"""Cell types for unstructured grids and polygonal data.

The numbering follows the VTK cell-type enumeration so that datasets written
by :mod:`repro.io.vtk_legacy` are recognisable to anyone familiar with the
legacy VTK file format.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, Sequence, Tuple


__all__ = [
    "CellType",
    "CELL_TYPE_NPOINTS",
    "cell_type_name",
    "triangulate_cell",
    "cell_edges",
]


class CellType(IntEnum):
    """Supported cell types (values match VTK)."""

    VERTEX = 1
    LINE = 3
    POLY_LINE = 4
    TRIANGLE = 5
    QUAD = 9
    TETRA = 10
    VOXEL = 11
    HEXAHEDRON = 12
    WEDGE = 13
    PYRAMID = 14


#: Fixed number of points per cell type (``None`` for variable-size cells).
CELL_TYPE_NPOINTS: Dict[CellType, int] = {
    CellType.VERTEX: 1,
    CellType.LINE: 2,
    CellType.POLY_LINE: -1,  # variable
    CellType.TRIANGLE: 3,
    CellType.QUAD: 4,
    CellType.TETRA: 4,
    CellType.VOXEL: 8,
    CellType.HEXAHEDRON: 8,
    CellType.WEDGE: 6,
    CellType.PYRAMID: 5,
}


_CELL_NAMES = {
    CellType.VERTEX: "vertex",
    CellType.LINE: "line",
    CellType.POLY_LINE: "polyline",
    CellType.TRIANGLE: "triangle",
    CellType.QUAD: "quad",
    CellType.TETRA: "tetrahedron",
    CellType.VOXEL: "voxel",
    CellType.HEXAHEDRON: "hexahedron",
    CellType.WEDGE: "wedge",
    CellType.PYRAMID: "pyramid",
}


def cell_type_name(cell_type: int) -> str:
    """Human-readable name for a cell-type code."""
    try:
        return _CELL_NAMES[CellType(cell_type)]
    except ValueError:
        return f"unknown({cell_type})"


# --------------------------------------------------------------------------- #
# Decomposition tables
# --------------------------------------------------------------------------- #
# Triangulation of the simple linear cells into triangles (surface cells) or
# into tetrahedra (volumetric cells).  Indices are local to the cell
# connectivity order.

_QUAD_TRIANGLES = [(0, 1, 2), (0, 2, 3)]

_TETRA_TRIANGLES = [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]

# VTK voxel ordering: (x,y,z) = (0,0,0),(1,0,0),(0,1,0),(1,1,0),(0,0,1),...
_VOXEL_TO_HEX = [0, 1, 3, 2, 4, 5, 7, 6]

_HEX_TETRAS = [
    (0, 1, 3, 4),
    (1, 2, 3, 6),
    (1, 3, 4, 6),
    (3, 4, 6, 7),
    (1, 4, 5, 6),
]

_WEDGE_TETRAS = [(0, 1, 2, 4), (0, 2, 3, 4), (2, 3, 4, 5)]

_PYRAMID_TETRAS = [(0, 1, 2, 4), (0, 2, 3, 4)]

_EDGES: Dict[CellType, List[Tuple[int, int]]] = {
    CellType.LINE: [(0, 1)],
    CellType.TRIANGLE: [(0, 1), (1, 2), (2, 0)],
    CellType.QUAD: [(0, 1), (1, 2), (2, 3), (3, 0)],
    CellType.TETRA: [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)],
    CellType.HEXAHEDRON: [
        (0, 1), (1, 2), (2, 3), (3, 0),
        (4, 5), (5, 6), (6, 7), (7, 4),
        (0, 4), (1, 5), (2, 6), (3, 7),
    ],
    CellType.WEDGE: [
        (0, 1), (1, 2), (2, 0),
        (3, 4), (4, 5), (5, 3),
        (0, 3), (1, 4), (2, 5),
    ],
    CellType.PYRAMID: [
        (0, 1), (1, 2), (2, 3), (3, 0),
        (0, 4), (1, 4), (2, 4), (3, 4),
    ],
}


def cell_edges(cell_type: int, connectivity: Sequence[int]) -> List[Tuple[int, int]]:
    """Return the list of global point-id edges of a cell."""
    ct = CellType(cell_type)
    conn = list(connectivity)
    if ct == CellType.VERTEX:
        return []
    if ct == CellType.POLY_LINE:
        return [(conn[i], conn[i + 1]) for i in range(len(conn) - 1)]
    if ct == CellType.VOXEL:
        conn = [conn[i] for i in _VOXEL_TO_HEX]
        ct = CellType.HEXAHEDRON
    edges = _EDGES.get(ct)
    if edges is None:
        raise ValueError(f"no edge table for cell type {cell_type_name(cell_type)}")
    return [(conn[a], conn[b]) for a, b in edges]


def triangulate_cell(cell_type: int, connectivity: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Decompose a 2-d cell (triangle/quad) or the *surface* of nothing else.

    Volumetric cells are not handled here — use :func:`tetrahedralize_cell` and
    extract the boundary instead.  Returns a list of global-id triangles.
    """
    ct = CellType(cell_type)
    conn = list(connectivity)
    if ct == CellType.TRIANGLE:
        return [(conn[0], conn[1], conn[2])]
    if ct == CellType.QUAD:
        return [tuple(conn[i] for i in tri) for tri in _QUAD_TRIANGLES]
    raise ValueError(
        f"cannot triangulate cell type {cell_type_name(cell_type)}; "
        "only 2-d cells are supported"
    )


def tetrahedralize_cell(cell_type: int, connectivity: Sequence[int]) -> List[Tuple[int, int, int, int]]:
    """Decompose a 3-d cell into tetrahedra (global point ids)."""
    ct = CellType(cell_type)
    conn = list(connectivity)
    if ct == CellType.TETRA:
        return [tuple(conn)]
    if ct == CellType.VOXEL:
        conn = [conn[i] for i in _VOXEL_TO_HEX]
        ct = CellType.HEXAHEDRON
    if ct == CellType.HEXAHEDRON:
        return [tuple(conn[i] for i in tet) for tet in _HEX_TETRAS]
    if ct == CellType.WEDGE:
        return [tuple(conn[i] for i in tet) for tet in _WEDGE_TETRAS]
    if ct == CellType.PYRAMID:
        return [tuple(conn[i] for i in tet) for tet in _PYRAMID_TETRAS]
    raise ValueError(
        f"cannot tetrahedralize cell type {cell_type_name(cell_type)}; "
        "only 3-d cells are supported"
    )


def surface_triangles_of_tetra(connectivity: Sequence[int]) -> List[Tuple[int, int, int]]:
    """The four triangular faces of a tetrahedron (global ids)."""
    conn = list(connectivity)
    return [tuple(conn[i] for i in tri) for tri in _TETRA_TRIANGLES]


def is_volumetric(cell_type: int) -> bool:
    """Whether the cell type encloses volume (3-d cell)."""
    return CellType(cell_type) in (
        CellType.TETRA,
        CellType.VOXEL,
        CellType.HEXAHEDRON,
        CellType.WEDGE,
        CellType.PYRAMID,
    )


def is_surface(cell_type: int) -> bool:
    """Whether the cell type is a 2-d (surface) cell."""
    return CellType(cell_type) in (CellType.TRIANGLE, CellType.QUAD)
