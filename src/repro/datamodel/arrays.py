"""Named data arrays and attribute containers.

These are the equivalents of ``vtkDataArray`` and ``vtkPointData`` /
``vtkCellData``.  A :class:`DataArray` is a thin wrapper around a NumPy array
that remembers its name and number of components; a :class:`FieldData` is an
ordered, name-keyed collection of arrays that all share the same tuple count
(one tuple per point or per cell of the owning dataset).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["AssociationError", "DataArray", "FieldData"]


def _hash_ndarray(hasher, values: np.ndarray) -> None:
    """Feed an ndarray's dtype, shape and raw bytes into a hash object."""
    arr = np.ascontiguousarray(values)
    hasher.update(str(arr.dtype).encode("utf-8"))
    hasher.update(str(arr.shape).encode("utf-8"))
    hasher.update(arr.tobytes())


class AssociationError(ValueError):
    """Raised when an array with the wrong tuple count is added to a dataset."""


def _as_2d(values: np.ndarray) -> np.ndarray:
    """Return ``values`` as a 2-d (n_tuples, n_components) float array view."""
    arr = np.asarray(values)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    if arr.ndim == 2:
        return arr
    raise ValueError(f"DataArray values must be 1-d or 2-d, got ndim={arr.ndim}")


class DataArray:
    """A named array of per-point or per-cell values.

    Parameters
    ----------
    name:
        Array name, e.g. ``"var0"``, ``"V"`` or ``"Temp"``.
    values:
        Array of shape ``(n,)`` for scalars or ``(n, c)`` for ``c``-component
        data (e.g. ``c == 3`` for vectors).
    dtype:
        Optional dtype override; defaults to ``float64`` for floating input
        and preserves integer dtypes otherwise.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str, values, dtype=None) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("DataArray name must be a non-empty string")
        arr = np.asarray(values, dtype=dtype)
        if arr.dtype.kind not in "fiub":
            raise TypeError(f"unsupported dtype {arr.dtype!r} for DataArray {name!r}")
        if dtype is None and arr.dtype.kind == "f":
            arr = arr.astype(np.float64, copy=False)
        self.name = name
        self._values = _as_2d(arr)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying ``(n_tuples, n_components)`` array."""
        return self._values

    @property
    def n_tuples(self) -> int:
        return int(self._values.shape[0])

    @property
    def n_components(self) -> int:
        return int(self._values.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    @property
    def is_scalar(self) -> bool:
        return self.n_components == 1

    @property
    def is_vector(self) -> bool:
        return self.n_components == 3

    # ------------------------------------------------------------------ #
    # views & statistics
    # ------------------------------------------------------------------ #
    def as_scalar(self) -> np.ndarray:
        """Return a 1-d view for single-component arrays.

        Multi-component arrays are reduced to their Euclidean magnitude, which
        mirrors ParaView's "Magnitude" coloring mode for vectors.
        """
        if self.is_scalar:
            return self._values[:, 0]
        return np.linalg.norm(self._values, axis=1)

    def component(self, index: int) -> np.ndarray:
        """Return the 1-d array of a single component."""
        if not 0 <= index < self.n_components:
            raise IndexError(
                f"component {index} out of range for array {self.name!r} "
                f"with {self.n_components} components"
            )
        return self._values[:, index]

    def range(self, component: Optional[int] = None) -> Tuple[float, float]:
        """Return ``(min, max)`` of a component or of the magnitude."""
        if self.n_tuples == 0:
            return (0.0, 0.0)
        if component is None:
            data = self.as_scalar()
        else:
            data = self.component(component)
        return (float(np.min(data)), float(np.max(data)))

    def copy(self, name: Optional[str] = None) -> "DataArray":
        return DataArray(name or self.name, self._values.copy())

    def fingerprint_into(self, hasher) -> None:
        """Feed this array's identity (name + values) into a hash object.

        Used by the engine's content-addressed result cache to derive stable
        digests for datasets passed directly into a pipeline.
        """
        hasher.update(self.name.encode("utf-8"))
        _hash_ndarray(hasher, self._values)

    def take(self, indices) -> "DataArray":
        """Return a new array restricted to ``indices`` (tuple selection)."""
        idx = np.asarray(indices)
        return DataArray(self.name, self._values[idx])

    def interpolate(self, indices_a, indices_b, t) -> "DataArray":
        """Linear interpolation between tuple pairs.

        ``result[i] = (1 - t[i]) * values[indices_a[i]] + t[i] * values[indices_b[i]]``

        Used by contouring/slicing filters that create new points on edges.
        """
        a = self._values[np.asarray(indices_a)]
        b = self._values[np.asarray(indices_b)]
        tt = np.asarray(t, dtype=np.float64).reshape(-1, 1)
        return DataArray(self.name, (1.0 - tt) * a + tt * b)

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_tuples

    def __array__(self, dtype=None) -> np.ndarray:
        if dtype is None:
            return self._values
        return self._values.astype(dtype)

    def __getitem__(self, item):
        return self._values[item]

    def __eq__(self, other) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, DataArray):
            return NotImplemented
        return (
            self.name == other.name
            and self._values.shape == other._values.shape
            and bool(np.allclose(self._values, other._values))
        )

    def __repr__(self) -> str:
        return (
            f"DataArray(name={self.name!r}, n_tuples={self.n_tuples}, "
            f"n_components={self.n_components}, dtype={self.dtype})"
        )


class FieldData:
    """An ordered mapping of array name → :class:`DataArray`.

    All arrays stored in one :class:`FieldData` must have the same number of
    tuples, enforced against the expected count supplied by the owning
    dataset (``expected_tuples``), when given.
    """

    def __init__(self, expected_tuples: Optional[int] = None) -> None:
        self._arrays: Dict[str, DataArray] = {}
        self._expected = expected_tuples

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def __getitem__(self, name: str) -> DataArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(
                f"no data array named {name!r}; available: {sorted(self._arrays)}"
            ) from None

    def get(self, name: str, default=None):
        return self._arrays.get(name, default)

    def keys(self) -> List[str]:
        return list(self._arrays.keys())

    def names(self) -> List[str]:
        return self.keys()

    def arrays(self) -> List[DataArray]:
        return list(self._arrays.values())

    def items(self):
        return self._arrays.items()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    @property
    def expected_tuples(self) -> Optional[int]:
        return self._expected

    def set_expected_tuples(self, n: Optional[int]) -> None:
        """Set/validate the tuple count all arrays must match."""
        if n is not None:
            for arr in self._arrays.values():
                if arr.n_tuples != n:
                    raise AssociationError(
                        f"array {arr.name!r} has {arr.n_tuples} tuples, expected {n}"
                    )
        self._expected = n

    def add(self, array: DataArray) -> DataArray:
        """Add (or replace) an array."""
        if not isinstance(array, DataArray):
            raise TypeError("FieldData.add expects a DataArray")
        if self._expected is not None and array.n_tuples != self._expected:
            raise AssociationError(
                f"array {array.name!r} has {array.n_tuples} tuples, "
                f"expected {self._expected}"
            )
        self._arrays[array.name] = array
        return array

    def add_array(self, name: str, values) -> DataArray:
        """Convenience: wrap raw values into a :class:`DataArray` and add it."""
        return self.add(DataArray(name, values))

    def remove(self, name: str) -> None:
        self._arrays.pop(name, None)

    def clear(self) -> None:
        self._arrays.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def first_scalar(self) -> Optional[DataArray]:
        """Return the first single-component array, if any."""
        for arr in self._arrays.values():
            if arr.is_scalar:
                return arr
        return None

    def first_vector(self) -> Optional[DataArray]:
        """Return the first 3-component array, if any."""
        for arr in self._arrays.values():
            if arr.is_vector:
                return arr
        return None

    def scalar_names(self) -> List[str]:
        return [a.name for a in self._arrays.values() if a.is_scalar]

    def vector_names(self) -> List[str]:
        return [a.name for a in self._arrays.values() if a.is_vector]

    # ------------------------------------------------------------------ #
    # bulk transforms used by filters
    # ------------------------------------------------------------------ #
    def take(self, indices) -> "FieldData":
        """Return a new FieldData with each array restricted to ``indices``."""
        out = FieldData()
        for arr in self._arrays.values():
            out.add(arr.take(indices))
        n = len(np.asarray(indices))
        out.set_expected_tuples(n)
        return out

    def interpolate(self, indices_a, indices_b, t) -> "FieldData":
        """Interpolate every array on edge (a, b) pairs with weights ``t``."""
        out = FieldData()
        for arr in self._arrays.values():
            out.add(arr.interpolate(indices_a, indices_b, t))
        out.set_expected_tuples(len(np.asarray(t)))
        return out

    def copy(self) -> "FieldData":
        out = FieldData(self._expected)
        for arr in self._arrays.values():
            out.add(arr.copy())
        return out

    def fingerprint_into(self, hasher) -> None:
        """Feed every array (in name order, for stability) into a hash object."""
        for name in sorted(self._arrays):
            self._arrays[name].fingerprint_into(hasher)

    def __repr__(self) -> str:
        return f"FieldData({sorted(self._arrays)})"
