"""Observability for the repro stack: tracing, metrics, logging.

The package is deliberately dependency-free and cheap to import.  Three
pieces:

* :mod:`repro.obs.trace` — contextvar-scoped spans, a thread-safe
  collector, JSONL + Chrome-trace export.  Off by default; every
  instrumented hot path pays one attribute check
  (``TRACE_STATE.tracer is None``) and nothing else.
* :mod:`repro.obs.metrics` — a process-wide registry of labeled counters /
  gauges / histograms with a picklable, order-independently mergeable
  snapshot type for shipping worker state across process boundaries.
* :mod:`repro.obs.logsetup` — one-call ``logging`` configuration backing
  the CLI's ``--log-level`` flag.

See ``docs/observability.md`` for the span model, metric names, and the
trace-file schema.
"""

from .logsetup import logging_setup
from .metrics import METRICS, MetricsRegistry, MetricsSnapshot, merge_all
from .summary import format_summary, summarize
from .trace import (
    Span,
    TRACE_STATE,
    TraceFile,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    read_trace,
    sort_spans,
    span,
    to_chrome_trace,
    tracing_enabled,
    write_chrome_trace,
    write_trace,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "TRACE_STATE",
    "TraceFile",
    "Tracer",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "format_summary",
    "logging_setup",
    "merge_all",
    "read_trace",
    "sort_spans",
    "span",
    "summarize",
    "to_chrome_trace",
    "tracing_enabled",
    "write_chrome_trace",
    "write_trace",
]
