"""Contextvar-scoped tracing: spans, a thread-safe collector, trace files.

A *span* is one timed region — a pipeline node execution, a suite cell, an
LLM dispatch — with monotonic (``perf_counter``) duration, a wall-clock
anchor for cross-process alignment, ok/error status, and free-form
attributes.  Spans nest through a :data:`contextvars.ContextVar`, so the
parent linkage is correct per thread *and* per asyncio task without any
caller bookkeeping.

Design constraints, in order:

* **Zero cost when disabled.**  Tracing is off by default; the only cost an
  instrumented hot path pays is a single attribute read
  (``TRACE_STATE.tracer is None``) — no allocation, no call.  Hot loops
  read the guard directly; convenience :func:`span` returns a shared no-op
  context manager.
* **Thread-safe collection.**  A :class:`Tracer` owns a lock-guarded span
  buffer; worker threads append concurrently.
* **Process-mergeable.**  Spans serialize to plain dicts
  (:meth:`Span.to_dict`), so worker processes ship their buffers back
  through the batch-result channel and the parent folds them in
  (:meth:`Tracer.extend_serialized`).  Export sorts spans canonically
  (:func:`sort_spans`), making a merged trace byte-deterministic with
  respect to arrival order.

Trace files are JSONL: one ``{"type": "span", ...}`` object per line plus a
single ``{"type": "metrics", ...}`` snapshot line (see
:mod:`repro.obs.metrics`).  :func:`to_chrome_trace` converts a span list to
the Chrome trace-event format that ``chrome://tracing`` and Perfetto load
directly.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "TRACE_STATE",
    "TraceFile",
    "Tracer",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "read_trace",
    "sort_spans",
    "span",
    "to_chrome_trace",
    "tracing_enabled",
    "write_chrome_trace",
    "write_trace",
]

#: per-process monotonically increasing span sequence number
_SPAN_SEQ = itertools.count(1)

#: the active span of the current thread/task (parent for new spans)
_CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One timed, attributed region of work.

    ``start_wall`` is a ``time.time()`` anchor (seconds since epoch) taken
    when the span opens; ``duration`` is measured with ``perf_counter`` so
    it never goes backwards.  ``span_id`` embeds the originating process id,
    which keeps ids unique across a process-pool run without coordination.
    """

    name: str
    category: str = ""
    span_id: str = ""
    parent_id: Optional[str] = None
    pid: int = 0
    thread_id: int = 0
    start_wall: float = 0.0
    duration: float = 0.0
    status: str = "ok"
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set_error(self, exc: BaseException) -> None:
        """Mark the span failed, capturing the exception type and message."""
        self.status = "error"
        self.error_type = type(exc).__name__
        self.error_message = str(exc)[:500]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSONL line / cross-process transport)."""
        payload: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "thread_id": self.thread_id,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "status": self.status,
        }
        if self.error_type is not None:
            payload["error_type"] = self.error_type
            payload["error_message"] = self.error_message
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (tolerates extras)."""
        return cls(
            name=str(payload.get("name", "?")),
            category=str(payload.get("category", "")),
            span_id=str(payload.get("span_id", "")),
            parent_id=payload.get("parent_id"),
            pid=int(payload.get("pid", 0)),
            thread_id=int(payload.get("thread_id", 0)),
            start_wall=float(payload.get("start_wall", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            status=str(payload.get("status", "ok")),
            error_type=payload.get("error_type"),
            error_message=payload.get("error_message"),
            attrs=dict(payload.get("attrs", {})),
        )


class _SpanHandle:
    """Context manager that times one span and hands it to the collector."""

    __slots__ = ("_tracer", "span", "_started", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._started = 0.0
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        span = self.span
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            span.parent_id = parent.span_id
        span.start_wall = time.time()
        self._token = _CURRENT_SPAN.set(span)
        self._started = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration = time.perf_counter() - self._started
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if exc_type is not None and isinstance(exc, BaseException):
            span.set_error(exc)
        self._tracer.add(span)
        return False


class _NoopSpanHandle:
    """The shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_HANDLE = _NoopSpanHandle()


class Tracer:
    """Thread-safe in-memory span collector.

    One tracer is installed process-wide by :func:`enable_tracing`; worker
    processes create their own on bootstrap and ship serialized buffers
    back to the parent, which folds them in with
    :meth:`extend_serialized`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def span(self, name: str, category: str = "", **attrs: Any) -> _SpanHandle:
        """Open a new span; use as a context manager."""
        new = Span(
            name=name,
            category=category,
            span_id=f"{os.getpid():x}-{next(_SPAN_SEQ)}",
            pid=os.getpid(),
            thread_id=threading.get_ident(),
            attrs=attrs,
        )
        return _SpanHandle(self, new)

    def add(self, span: Span) -> None:
        """Append one finished span to the buffer."""
        with self._lock:
            self._spans.append(span)

    def extend_serialized(self, payloads: Iterable[Dict[str, Any]]) -> int:
        """Fold serialized spans (a child process's buffer) in; returns count."""
        spans = [Span.from_dict(p) for p in payloads]
        with self._lock:
            self._spans.extend(spans)
        return len(spans)

    def spans(self) -> List[Span]:
        """A snapshot copy of the collected spans (collection order)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Remove and return every collected span (worker shipping path)."""
        with self._lock:
            spans = self._spans
            self._spans = []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _TraceState:
    """The process-wide on/off switch — one attribute, read on hot paths."""

    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Optional[Tracer] = None


#: instrumented code guards on ``TRACE_STATE.tracer is None`` — nothing else
TRACE_STATE = _TraceState()


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer; idempotent-friendly.

    Passing an existing :class:`Tracer` swaps it in (tests use this to
    isolate buffers); otherwise the current tracer is kept if one is
    already installed.
    """
    if tracer is None:
        # explicit None check: an empty Tracer is falsy through __len__
        tracer = TRACE_STATE.tracer if TRACE_STATE.tracer is not None else Tracer()
    TRACE_STATE.tracer = tracer
    return tracer


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the process-wide tracer; returns it (with its spans)."""
    tracer = TRACE_STATE.tracer
    TRACE_STATE.tracer = None
    return tracer


def tracing_enabled() -> bool:
    """True while a process-wide tracer is installed."""
    return TRACE_STATE.tracer is not None


def current_span() -> Optional[Span]:
    """The innermost open span of the calling thread/task, if any."""
    return _CURRENT_SPAN.get()


def span(name: str, category: str = "", **attrs: Any):
    """Convenience span: a real handle when tracing is on, a no-op otherwise.

    Cheap enough for per-cell instrumentation; per-node hot loops should
    read ``TRACE_STATE.tracer`` directly instead (no kwargs allocation).
    """
    tracer = TRACE_STATE.tracer
    if tracer is None:
        return _NOOP_HANDLE
    return tracer.span(name, category, **attrs)


# --------------------------------------------------------------------------- #
# trace files
# --------------------------------------------------------------------------- #
def sort_spans(spans: Iterable[Span]) -> List[Span]:
    """Spans in canonical order: (start_wall, pid, span_id).

    ``span_id`` embeds a per-process sequence number, so the order is total
    and independent of merge/arrival order — the property that makes a
    merged multi-process trace byte-deterministic.
    """
    def _key(s: Span) -> Tuple[float, int, str]:
        return (s.start_wall, s.pid, s.span_id)

    return sorted(spans, key=_key)


@dataclass
class TraceFile:
    """A parsed trace: spans plus the run's final metrics snapshot dict."""

    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)


def write_trace(
    path: Union[str, Path],
    spans: Iterable[Span],
    metrics: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a JSONL trace file (canonically sorted; parents created).

    ``metrics`` is a plain snapshot dict (``MetricsSnapshot.as_dict()``);
    ``meta`` is free-form run description (command line, executor, ...).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: List[str] = []
    if meta:
        lines.append(json.dumps({"type": "meta", **meta}, sort_keys=True))
    for item in sort_spans(spans):
        lines.append(json.dumps(item.to_dict(), sort_keys=True))
    if metrics is not None:
        lines.append(json.dumps({"type": "metrics", "metrics": metrics}, sort_keys=True))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace(path: Union[str, Path]) -> TraceFile:
    """Parse a JSONL trace file; tolerates blank and torn trailing lines."""
    out = TraceFile()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from an interrupted writer
            kind = payload.get("type")
            if kind == "span":
                out.spans.append(Span.from_dict(payload))
            elif kind == "metrics":
                out.metrics = dict(payload.get("metrics", {}))
            elif kind == "meta":
                out.meta = {k: v for k, v in payload.items() if k != "type"}
    return out


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Convert spans to the Chrome trace-event format (Perfetto-loadable).

    Every span becomes one complete (``"ph": "X"``) event; timestamps are
    microseconds of ``start_wall``, so spans from different processes align
    on the shared wall clock.
    """
    events: List[Dict[str, Any]] = []
    for item in sort_spans(spans):
        args: Dict[str, Any] = dict(item.attrs)
        args["status"] = item.status
        if item.error_type is not None:
            args["error_type"] = item.error_type
            args["error_message"] = item.error_message
        events.append(
            {
                "name": item.name,
                "cat": item.category or "span",
                "ph": "X",
                "ts": item.start_wall * 1e6,
                "dur": item.duration * 1e6,
                "pid": item.pid,
                "tid": item.thread_id,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path], spans: Iterable[Span]) -> Path:
    """Write the Chrome trace-event JSON for ``spans`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(spans), sort_keys=True) + "\n", encoding="utf-8")
    return path
