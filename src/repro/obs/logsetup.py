"""One-call stdlib-``logging`` configuration for the ``repro`` CLI.

Every module in the package logs through ``logging.getLogger("repro...")``;
this module wires the root ``repro`` logger to stderr exactly once with a
compact, timestamped format.  The CLI calls :func:`logging_setup` with its
``--log-level`` flag before dispatching; library code never configures
handlers itself, so embedding ``repro`` in another application keeps the
host's logging policy intact.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, Union

__all__ = ["logging_setup"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"
_CONFIGURED_FLAG = "_repro_obs_handler"


def logging_setup(level: Union[int, str, None] = None, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; safe to call repeatedly.

    ``level`` accepts a ``logging`` constant or a name like ``"debug"``;
    when omitted, the ``REPRO_LOG_LEVEL`` environment variable is consulted
    and the default is ``WARNING`` (so retries and cache corruption are
    visible, routine chatter is not).  Repeat calls only adjust the level —
    no duplicate handlers.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "warning")
    if isinstance(level, str):
        resolved: Optional[int] = getattr(logging, level.upper(), None)
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved

    logger = logging.getLogger("repro")
    logger.setLevel(level)
    has_ours = any(getattr(h, _CONFIGURED_FLAG, False) for h in logger.handlers)
    if not has_ours:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        setattr(handler, _CONFIGURED_FLAG, True)
        logger.addHandler(handler)
        logger.propagate = False
    return logger
