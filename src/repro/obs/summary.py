"""Turn a trace file into the report `repro obs summary` prints.

All functions here are pure: they take the parsed :class:`TraceFile`
(spans + final metrics snapshot) and return plain data or formatted text,
so the CLI stays a thin shell and tests can assert on structure instead of
scraping stdout.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List

from .metrics import MetricsSnapshot, parse_key
from .trace import Span, TraceFile

__all__ = [
    "format_summary",
    "phase_wall_clock",
    "slowest_spans",
    "summarize",
]


def phase_wall_clock(spans: List[Span]) -> Dict[str, Dict[str, float]]:
    """Per-category totals: span count, summed duration, error count.

    "Phase" is the span ``category`` (``engine.node``, ``suite.cell``,
    ``llm.dispatch``, ...); summed duration over a parallel phase can exceed
    wall-clock — it is total work, which is the quantity cache hit-rates and
    overhead comparisons need.
    """
    out: Dict[str, Dict[str, float]] = defaultdict(lambda: {"count": 0.0, "seconds": 0.0, "errors": 0.0})
    for span in spans:
        bucket = out[span.category or "(uncategorized)"]
        bucket["count"] += 1
        bucket["seconds"] += span.duration
        if span.status == "error":
            bucket["errors"] += 1
    return dict(out)


def slowest_spans(spans: List[Span], limit: int = 10) -> List[Span]:
    """The *limit* longest spans, slowest first (ties broken canonically)."""
    return sorted(spans, key=lambda s: (-s.duration, s.start_wall, s.pid, s.span_id))[:limit]


def _cache_hit_rates(snapshot: MetricsSnapshot) -> Dict[str, Dict[str, float]]:
    """Per-tier hit/miss/eviction/corruption counts + hit-rate from counters."""
    tiers: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"hits": 0.0, "misses": 0.0, "evictions": 0.0, "corruptions": 0.0}
    )
    plural = {"hit": "hits", "miss": "misses", "eviction": "evictions", "corruption": "corruptions"}
    for key, value in snapshot.counters.items():
        name, labels = parse_key(key)
        if name != "cache_ops_total":
            continue
        label_map = dict(labels)
        op = plural.get(label_map.get("op", ""), None)
        if op is None:
            continue
        tiers[label_map.get("tier", "?")][op] += value
    for stats in tiers.values():
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
    return dict(tiers)


def _fault_counts(snapshot: MetricsSnapshot) -> Dict[str, Any]:
    """Injected-fault counts by kind and recovery counts by action.

    Both are zero-valued empty dicts on a fault-free run, so the section
    doubles as the chaos job's "did anything actually fire?" check.
    """
    injected: Dict[str, float] = defaultdict(float)
    recoveries: Dict[str, float] = defaultdict(float)
    write_failures = 0.0
    for key, value in snapshot.counters.items():
        name, labels = parse_key(key)
        label_map = dict(labels)
        if name == "fault_injected_total":
            injected[label_map.get("kind", "?")] += value
        elif name == "recovery_total":
            recoveries[label_map.get("action", "?")] += value
        elif name == "cache_write_failures_total":
            write_failures += value
    return {
        "injected": dict(injected),
        "recoveries": dict(recoveries),
        "cache_write_failures": write_failures,
    }


def summarize(trace: TraceFile, limit: int = 10) -> Dict[str, Any]:
    """Structured digest of a trace: phases, caches, LLM counts, slow spans."""
    snapshot = MetricsSnapshot.from_dict(trace.metrics) if trace.metrics else MetricsSnapshot()
    phases = phase_wall_clock(trace.spans)
    slow = slowest_spans(trace.spans, limit=limit)
    return {
        "span_count": len(trace.spans),
        "error_count": sum(1 for s in trace.spans if s.status == "error"),
        "process_count": len({s.pid for s in trace.spans}),
        "phases": phases,
        "caches": _cache_hit_rates(snapshot),
        "llm": {
            "calls": snapshot.counter_total("llm_calls_total"),
            "cached": snapshot.counter_total("llm_calls_total", outcome="cached"),
            "errors": snapshot.counter_total("llm_calls_total", outcome="error"),
            "retries": snapshot.counter_total("llm_retries_total"),
            "budget_denials": snapshot.counter_total("llm_budget_denials_total"),
        },
        "faults": _fault_counts(snapshot),
        "slowest": [
            {
                "name": s.name,
                "category": s.category,
                "seconds": s.duration,
                "status": s.status,
                "pid": s.pid,
            }
            for s in slow
        ],
        "meta": trace.meta,
    }


def format_summary(digest: Dict[str, Any]) -> str:
    """Render :func:`summarize` output as the human-readable CLI report."""
    lines: List[str] = []
    meta = digest.get("meta") or {}
    header = "trace summary"
    if meta.get("command"):
        header += f" — {meta['command']}"
    lines.append(header)
    lines.append(
        f"  spans: {digest['span_count']}  errors: {digest['error_count']}"
        f"  processes: {digest['process_count']}"
    )

    lines.append("")
    lines.append("per-phase wall-clock (total work, not elapsed):")
    lines.append("  phase                    count     seconds   errors")
    for phase in sorted(digest["phases"]):
        stats = digest["phases"][phase]
        lines.append(
            f"  {phase:<24} {int(stats['count']):>5} {stats['seconds']:>11.3f} {int(stats['errors']):>8}"
        )

    caches = digest["caches"]
    lines.append("")
    if caches:
        lines.append("cache hit-rate by tier:")
        lines.append("  tier        hits   misses   evictions   corruptions   hit-rate")
        for tier in sorted(caches):
            stats = caches[tier]
            lines.append(
                f"  {tier:<9} {int(stats['hits']):>6} {int(stats['misses']):>8}"
                f" {int(stats['evictions']):>11} {int(stats['corruptions']):>13}"
                f" {stats['hit_rate']:>9.1%}"
            )
    else:
        lines.append("cache hit-rate by tier: (no cache metrics in trace)")

    llm = digest["llm"]
    lines.append("")
    lines.append(
        "llm: "
        f"calls={int(llm['calls'])} cached={int(llm['cached'])} errors={int(llm['errors'])} "
        f"retries={int(llm['retries'])} budget_denials={int(llm['budget_denials'])}"
    )

    faults = digest.get("faults") or {}
    if faults.get("injected") or faults.get("recoveries") or faults.get("cache_write_failures"):
        injected = " ".join(
            f"{kind}={int(count)}" for kind, count in sorted(faults["injected"].items())
        )
        recovered = " ".join(
            f"{action}={int(count)}" for action, count in sorted(faults["recoveries"].items())
        )
        lines.append("")
        lines.append(f"faults injected: {injected or '(none)'}")
        lines.append(f"recovery actions: {recovered or '(none)'}")
        if faults.get("cache_write_failures"):
            lines.append(f"cache write failures: {int(faults['cache_write_failures'])}")

    lines.append("")
    lines.append(f"{len(digest['slowest'])} slowest spans:")
    for i, span in enumerate(digest["slowest"], start=1):
        flag = "" if span["status"] == "ok" else f"  [{span['status']}]"
        lines.append(
            f"  {i:>2}. {span['seconds']:>9.3f}s  {span['category'] or 'span':<14} {span['name']}{flag}"
        )
    return "\n".join(lines)
