"""Process-wide metrics: labeled counters, gauges, histograms, snapshots.

The registry is a flat, lock-guarded map from ``(name, labels)`` to a value,
where ``labels`` is a canonically sorted tuple of ``(key, value)`` string
pairs.  Serialized keys use the Prometheus-ish form
``name{key=value,key2=value2}`` (bare ``name`` when unlabeled), which keeps
snapshots human-readable in trace files and deterministic under
``json.dumps(..., sort_keys=True)``.

:class:`MetricsSnapshot` is the transport type: a frozen plain-dict copy of
the registry that pickles across process boundaries, merges
order-independently (counter/histogram sums commute; gauges take the
latest-wins value only through :meth:`MetricsRegistry.observe` — merged
gauges keep the max), and diffs (:meth:`MetricsSnapshot.delta`) so a worker
can ship exactly what one job added.

Like tracing, metric updates on hot paths are guarded by the single
``TRACE_STATE.tracer`` attribute check from :mod:`repro.obs.trace` at the
call site — this module itself is always safe to call and merely cheap.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "format_key",
    "merge_all",
    "parse_key",
]

_LabelTuple = Tuple[Tuple[str, str], ...]


def _label_tuple(labels: Mapping[str, Any]) -> _LabelTuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_key(name: str, labels: _LabelTuple = ()) -> str:
    """Serialize ``(name, labels)`` as ``name{k=v,...}`` (bare when unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, _LabelTuple]:
    """Invert :func:`format_key`; tolerant of label-less keys."""
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels = []
    for part in rest.split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels.append((k, v))
    return name, tuple(labels)


class MetricsSnapshot:
    """A frozen, picklable, mergeable copy of the registry's state.

    ``counters`` maps serialized keys to floats; ``gauges`` likewise;
    ``histograms`` maps keys to ``{"count", "sum", "min", "max"}`` summary
    dicts.  All three are plain data, so the snapshot crosses process
    boundaries as-is and serializes deterministically.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = {k: dict(v) for k, v in (histograms or {}).items()}

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold *other* in (in place) and return self.

        Counters and histogram counts/sums add; histogram min/max widen;
        gauges keep the max (the only order-independent choice without
        timestamps).  Merging is therefore commutative and associative, so
        parent processes may fold worker snapshots in any arrival order and
        land on identical state.
        """
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        for key, value in other.gauges.items():
            self.gauges[key] = max(self.gauges.get(key, value), value)
        for key, summary in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = dict(summary)
            else:
                mine["count"] += summary["count"]
                mine["sum"] += summary["sum"]
                mine["min"] = min(mine["min"], summary["min"])
                mine["max"] = max(mine["max"], summary["max"])
        return self

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since *earlier*: a new snapshot of the differences.

        Counter/histogram deltas subtract; gauges copy the current value.
        Keys absent from *earlier* are treated as zero.  Used by workers to
        report exactly one job's worth of activity.
        """
        counters = {}
        for key, value in self.counters.items():
            diff = value - earlier.counters.get(key, 0.0)
            if diff:
                counters[key] = diff
        histograms = {}
        for key, summary in self.histograms.items():
            prev = earlier.histograms.get(key)
            if prev is None:
                histograms[key] = dict(summary)
                continue
            count = summary["count"] - prev["count"]
            if count:
                histograms[key] = {
                    "count": count,
                    "sum": summary["sum"] - prev["sum"],
                    # true min/max of the window aren't recoverable from two
                    # summaries; the current bounds are the safe envelope
                    "min": summary["min"],
                    "max": summary["max"],
                }
        return MetricsSnapshot(counters=counters, gauges=dict(self.gauges), histograms=histograms)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialization (trace-file metrics line)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        return cls(
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms={k: dict(v) for k, v in payload.get("histograms", {}).items()},
        )

    def counter_total(self, name: str, **match: str) -> float:
        """Sum every counter series of *name* whose labels include ``match``."""
        total = 0.0
        wanted = set(_label_tuple(match))
        for key, value in self.counters.items():
            key_name, labels = parse_key(key)
            if key_name == name and wanted.issubset(set(labels)):
                total += value
        return total

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Thread-safe labeled counter/gauge/histogram store.

    One process-wide instance lives at :data:`METRICS`.  All mutators take
    labels as keyword arguments::

        METRICS.incr("cache_ops_total", tier="disk", op="hit")
        METRICS.observe("node_seconds", 0.12, node="Contour")
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    def incr(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add *value* (default 1) to the counter series ``name{labels}``."""
        key = format_key(name, _label_tuple(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge series ``name{labels}`` to *value* (last write wins)."""
        key = format_key(name, _label_tuple(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram series ``name{labels}``."""
        key = format_key(name, _label_tuple(labels))
        with self._lock:
            summary = self._histograms.get(key)
            if summary is None:
                self._histograms[key] = {
                    "count": 1.0,
                    "sum": float(value),
                    "min": float(value),
                    "max": float(value),
                }
            else:
                summary["count"] += 1.0
                summary["sum"] += float(value)
                summary["min"] = min(summary["min"], value)
                summary["max"] = max(summary["max"], value)

    def snapshot(self) -> MetricsSnapshot:
        """A consistent frozen copy of the current state."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={k: dict(v) for k, v in self._histograms.items()},
            )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into the live registry."""
        with self._lock:
            for key, value in snap.counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in snap.gauges.items():
                self._gauges[key] = max(self._gauges.get(key, value), value)
            for key, summary in snap.histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    self._histograms[key] = dict(summary)
                else:
                    mine["count"] += summary["count"]
                    mine["sum"] += summary["sum"]
                    mine["min"] = min(mine["min"], summary["min"])
                    mine["max"] = max(mine["max"], summary["max"])

    def reset(self) -> None:
        """Clear every series (tests and worker bootstrap)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def counter_names(self) -> List[str]:
        """Sorted serialized counter keys currently present."""
        with self._lock:
            return sorted(self._counters)


#: the process-wide registry every instrumentation site writes to
METRICS = MetricsRegistry()


def merge_all(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold an iterable of snapshots into one (order-independent)."""
    out = MetricsSnapshot()
    for snap in snapshots:
        out.merge(snap)
    return out
