"""Content-addressed result cache.

Every node execution is keyed on ``(spec name, normalized properties,
extra cache token, upstream keys)``.  Because upstream keys chain the same
way, a key is a digest of the *entire* upstream pipeline description — two
structurally identical pipelines (even built by different sessions) map to
the same keys and share results, while changing any property invalidates
exactly the downstream subgraph.

Raw :class:`~repro.datamodel.dataset.Dataset` objects appearing as inputs or
property values are folded in via their content fingerprint
(:meth:`Dataset.content_fingerprint`), so "the same data" caches equal even
when the object identity differs.

The cache is **tiered**:

* tier 0 — :class:`ResultCache`, the in-memory LRU every engine consults
  first (object identity preserved, nanosecond lookups);
* tier 1 — :class:`DiskCache`, an optional content-addressed store of
  serialized results under a cache root.  It persists across processes, so a
  warm re-run of an unchanged pipeline executes zero nodes, and process-pool
  workers reuse each other's upstream results through the shared files.

:class:`TieredCache` composes the two behind the single ``get``/``put``
protocol (:class:`CacheLike`) the engine sees; :func:`shared_cache` returns
the process-wide tiered facade, and :func:`configure_shared_cache` (or the
``REPRO_CACHE_DIR`` environment variable) attaches the disk tier.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.faults.runtime import CORRUPT_WRITE, FAULT_STATE
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACE_STATE

try:  # POSIX file locking; absent on some platforms — locking degrades to none
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "normalize_value",
    "node_key",
    "CacheLike",
    "CacheStats",
    "ResultCache",
    "DiskCache",
    "TieredCache",
    "shared_cache",
    "configure_shared_cache",
    "CACHE_DIR_ENV_VAR",
]

#: environment variable naming the disk-cache root attached to the shared cache
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

_log = logging.getLogger("repro.engine.cache")


def normalize_value(value: Any) -> Any:
    """Canonicalize a property value into a repr-stable structure.

    Handles numbers, strings, lists/tuples, dicts, numpy scalars and arrays,
    and datasets (by content fingerprint).  The result round-trips through
    ``repr`` deterministically, which is all the key derivation needs.
    """
    from repro.datamodel.dataset import Dataset

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return ("ndarray", str(value.dtype), value.shape, value.tobytes().hex())
    if isinstance(value, Dataset):
        return ("dataset", value.content_fingerprint())
    if isinstance(value, (list, tuple)):
        return [normalize_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): normalize_value(v) for k, v in sorted(value.items())}
    # property-group views and similar
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return normalize_value(as_dict())
    return repr(value)


def node_key(
    spec_name: str,
    properties: Dict[str, Any],
    upstream_keys: Iterable[str] = (),
    token: Any = None,
) -> str:
    """Derive the cache key of one node from its full upstream description."""
    hasher = hashlib.sha1()
    hasher.update(spec_name.encode("utf-8"))
    hasher.update(repr(normalize_value(properties)).encode("utf-8"))
    if token is not None:
        hasher.update(repr(normalize_value(token)).encode("utf-8"))
    for upstream in upstream_keys:
        hasher.update(upstream.encode("utf-8"))
    return hasher.hexdigest()


class CacheStats:
    """Hit/miss/eviction/corruption/write-failure counters (snapshot-friendly)."""

    __slots__ = ("hits", "misses", "evictions", "corruptions", "write_failures")

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        corruptions: int = 0,
        write_failures: int = 0,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.corruptions = corruptions
        self.write_failures = write_failures

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.evictions, self.corruptions, self.write_failures
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.corruptions - earlier.corruptions,
            self.write_failures - earlier.write_failures,
        )

    def __repr__(self) -> str:
        text = f"CacheStats(hits={self.hits}, misses={self.misses}, evictions={self.evictions}"
        if self.corruptions:
            text += f", corruptions={self.corruptions}"
        if self.write_failures:
            text += f", write_failures={self.write_failures}"
        return text + ")"


class CacheLike:
    """The duck-typed protocol the engine requires of a cache.

    Any object with these methods can back an :class:`~repro.engine.core.Engine`
    — :class:`ResultCache` (memory), :class:`DiskCache` (files), and
    :class:`TieredCache` (both) all satisfy it.
    """

    stats: CacheStats

    def get(self, key: str) -> Tuple[bool, Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def put(self, key: str, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class ResultCache(CacheLike):
    """A thread-safe LRU mapping of node key → executed output (tier 0)."""

    def __init__(self, max_entries: Optional[int] = 1024) -> None:
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def get(self, key: str) -> Tuple[bool, Any]:
        """Returns ``(found, value)`` and updates the counters."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                found, value = True, self._entries[key]
            else:
                self.stats.misses += 1
                found, value = False, None
        if TRACE_STATE.tracer is not None:
            METRICS.incr("cache_ops_total", tier="memory", op="hit" if found else "miss")
        return found, value

    def put(self, key: str, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    evicted += 1
        if evicted and TRACE_STATE.tracer is not None:
            METRICS.incr("cache_ops_total", evicted, tier="memory", op="eviction")

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return f"<ResultCache entries={len(self)} {self.stats!r}>"


# --------------------------------------------------------------------------- #
# tier 1: persistent disk cache
# --------------------------------------------------------------------------- #
class DiskCache(CacheLike):
    """A size-bounded, content-addressed store of serialized results (tier 1).

    Entries live under ``root`` as one file per node key, sharded by the first
    two hex digits (``root/ab/abcdef….bin``), each framed and checksummed by
    :mod:`repro.datamodel.serialization`.  Design points:

    * **atomic writes** — entries are written to a unique temporary file in
      the same directory and ``os.replace``-d into place, so readers (and
      concurrent writers of the same key) only ever see complete files;
    * **file locking** — writers serialize on an advisory ``flock`` over
      ``root/.lock`` (where available), so concurrent processes never race
      the eviction scan;
    * **LRU eviction** — every hit bumps the entry's mtime with a strictly
      monotonic per-process clock; when the store exceeds ``max_bytes`` the
      oldest-mtime entries are removed first;
    * **corruption tolerance** — a truncated, scribbled, or foreign file is
      counted (``stats.corruptions``), deleted, and reported as a miss —
      never an exception;
    * **graceful degradation** — values that cannot be pickled are simply not
      persisted (the memory tier above still holds them), and storage-level
      write failures (ENOSPC, permissions, dying disks) degrade to cache-off
      with a WARNING and a ``stats.write_failures`` count — never a crash.
      After :data:`WRITE_FAILURE_LIMIT` *consecutive* failures further
      writes are skipped entirely; reads keep working throughout.
    """

    #: filename suffix of one cache entry
    ENTRY_SUFFIX = ".bin"
    #: consecutive write failures tolerated before writes shut off
    WRITE_FAILURE_LIMIT = 3

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = 1 << 30,
    ) -> None:
        self.root = Path(root).expanduser().resolve()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()  # guards stats, the mtime clock, the size estimate
        self._last_tick = 0
        self._write_streak = 0  # consecutive write failures
        self._writes_disabled = False
        #: running size estimate; None until the first full scan.  Keeps the
        #: O(entries) stat-and-sort eviction scan off the per-put hot path:
        #: a put only scans when the estimate says the bound is crossed.
        #: Concurrent writers each estimate only their own contribution, so
        #: the bound is approximate under cross-process churn — each scan
        #: resyncs the estimate with the real directory contents.
        self._size_estimate: Optional[int] = None

    # ------------------------------------------------------------------ #
    # paths and locking
    # ------------------------------------------------------------------ #
    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.ENTRY_SUFFIX}"

    def _entries(self) -> List[Path]:
        return [
            path
            for shard in self.root.iterdir()
            if shard.is_dir()
            for path in shard.glob(f"*{self.ENTRY_SUFFIX}")
        ]

    def entry_paths(self) -> List[Path]:
        """The on-disk entry files (public view for inspection tooling)."""
        return self._entries()

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Advisory cross-process writer lock (no-op where flock is missing)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self.root / ".lock", "wb") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _tick(self) -> int:
        """A strictly increasing nanosecond timestamp for LRU ordering.

        ``time_ns`` alone can repeat within one process on coarse clocks,
        which would make eviction order depend on directory-listing order.
        """
        with self._lock:
            now = max(time.time_ns(), self._last_tick + 1)
            self._last_tick = now
            return now

    def _touch(self, path: Path) -> None:
        tick = self._tick()
        try:
            os.utime(path, ns=(tick, tick))
        except OSError:  # entry evicted by a concurrent process — harmless
            pass

    # ------------------------------------------------------------------ #
    # CacheLike
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Tuple[bool, Any]:
        """Returns ``(found, value)``; corrupt entries are discarded as misses."""
        from repro.datamodel.serialization import CachePayloadError, read_payload_file

        path = self._entry_path(key)
        try:
            value = read_payload_file(path)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            if TRACE_STATE.tracer is not None:
                METRICS.incr("cache_ops_total", tier="disk", op="miss")
            return False, None
        except CachePayloadError as exc:
            # bad entry: remove it so the slot gets rewritten, never fatal
            _log.warning("discarding corrupt cache entry %s: %s", path.name, exc)
            with contextlib.suppress(OSError):
                path.unlink()
            with self._lock:
                self.stats.corruptions += 1
                self.stats.misses += 1
            if TRACE_STATE.tracer is not None:
                METRICS.incr("cache_ops_total", tier="disk", op="corruption")
                METRICS.incr("cache_ops_total", tier="disk", op="miss")
            return False, None
        self._touch(path)
        with self._lock:
            self.stats.hits += 1
        if TRACE_STATE.tracer is not None:
            METRICS.incr("cache_ops_total", tier="disk", op="hit")
        return True, value

    @property
    def writes_disabled(self) -> bool:
        """True once consecutive write failures shut the write path off."""
        return self._writes_disabled

    def put(self, key: str, value: Any) -> None:
        """Persist one entry atomically; unpicklable values are skipped.

        Storage-level failures — a full disk, a permission change, the
        injected ``cache-write-error`` fault — drop the write with a WARNING
        instead of crashing the run (the memory tier still serves the
        value); :data:`WRITE_FAILURE_LIMIT` consecutive failures disable
        writes for this cache instance, reads stay on.
        """
        from repro.datamodel.serialization import dumps_payload

        if self._writes_disabled:
            return
        try:
            payload = dumps_payload(value)
        except Exception:  # noqa: BLE001 - unpicklable value: memory-tier only
            return
        faults = FAULT_STATE.runtime
        try:
            if faults is not None and faults.checkpoint("cache.disk.write", key) == CORRUPT_WRITE:
                # simulate a torn/scribbled write: the framed checksum catches
                # it on the next get(), which discards the entry as a miss
                payload = b"\x00scribble\x00" + payload[: len(payload) // 2]
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
            with self._write_lock():
                try:
                    tmp.write_bytes(payload)
                    os.replace(tmp, path)
                finally:
                    with contextlib.suppress(OSError):
                        tmp.unlink()
                self._touch(path)
                if self._grow_estimate(len(payload)):
                    self._evict_to_fit()
        except OSError as exc:
            self._note_write_failure(key, exc)
            return
        with self._lock:
            self._write_streak = 0

    def _note_write_failure(self, key: str, exc: OSError) -> None:
        """Count, warn, and — after enough consecutive failures — stop writing."""
        with self._lock:
            self.stats.write_failures += 1
            self._write_streak += 1
            tripped = self._write_streak >= self.WRITE_FAILURE_LIMIT and not self._writes_disabled
            if tripped:
                self._writes_disabled = True
        _log.warning("disk cache write failed for %s: %s", key, exc)
        if tripped:
            _log.warning(
                "disk cache writes disabled after %d consecutive failures (reads stay on)",
                self.WRITE_FAILURE_LIMIT,
            )
        # always counted: a degrading cache must be visible even untraced
        METRICS.incr("cache_write_failures_total", tier="disk")

    def sweep_stale_tmp(self) -> int:
        """Remove abandoned ``.*.tmp`` staging files left by killed writers.

        Atomic writers unlink their own staging file on every path except a
        hard kill mid-write; interrupted batch runs call this so the cache
        directory ends up exactly as a clean run would leave it.  Returns
        the number of files removed.
        """
        removed = 0
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for tmp in shard.glob(".*.tmp"):
                with contextlib.suppress(OSError):
                    tmp.unlink()
                    removed += 1
        return removed

    def clear(self) -> None:
        with self._write_lock():
            for path in self._entries():
                with contextlib.suppress(OSError):
                    path.unlink()
            with self._lock:
                self._size_estimate = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _grow_estimate(self, written: int) -> bool:
        """Account for a write; True when the estimate crosses ``max_bytes``.

        First call seeds the estimate with one real scan; after that, puts
        are O(1) until the bound is (apparently) exceeded.
        """
        if self.max_bytes is None:
            return False
        with self._lock:
            if self._size_estimate is None:
                needs_seed = True
            else:
                self._size_estimate += written
                return self._size_estimate > self.max_bytes
        if needs_seed:
            total = self.total_bytes()
            with self._lock:
                self._size_estimate = total
            return total > self.max_bytes
        return False  # pragma: no cover - unreachable

    def _evict_to_fit(self) -> None:
        """Drop oldest-mtime entries until the store fits ``max_bytes``.

        Caller holds the write lock.  Entries that vanish mid-scan (evicted
        by a concurrent process) are skipped, not errors.  The scan doubles
        as a resync of the running size estimate.  An entry whose unlink
        fails is still on disk, so it keeps counting against the estimate
        and the eviction stats — otherwise the estimate under-reports and
        the store can exceed ``max_bytes`` indefinitely.
        """
        if self.max_bytes is None:
            return
        entries: List[Tuple[int, int, Path]] = []  # (mtime_ns, size, path)
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        entries.sort()
        evicted = 0
        for mtime_ns, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # still on disk: it still counts against the store
            total -= size
            evicted += 1
            with self._lock:
                self.stats.evictions += 1
        with self._lock:
            self._size_estimate = total
        if evicted and TRACE_STATE.tracer is not None:
            METRICS.incr("cache_ops_total", evicted, tier="disk", op="eviction")

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        total = 0
        for path in self._entries():
            with contextlib.suppress(OSError):
                total += path.stat().st_size
        return total

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()

    def __len__(self) -> int:
        return len(self._entries())

    def __repr__(self) -> str:
        return (
            f"<DiskCache root={str(self.root)!r} entries={len(self)} "
            f"bytes={self.total_bytes()} {self.stats!r}>"
        )


# --------------------------------------------------------------------------- #
# tier composition
# --------------------------------------------------------------------------- #
class TieredCache(CacheLike):
    """Memory tier over an optional disk tier, behind one ``get``/``put``.

    * ``get`` consults memory first; a disk hit is *promoted* into the memory
      tier, so repeated access within one process keeps object identity.
    * ``put`` writes through to both tiers.
    * The disk tier can be attached/detached at runtime
      (:meth:`attach_disk`) — engines hold a reference to this facade, so a
      late ``configure_shared_cache()`` call reaches every engine already
      constructed, including the module-level pvsim engine.
    """

    def __init__(
        self,
        memory: Optional[ResultCache] = None,
        disk: Optional[DiskCache] = None,
    ) -> None:
        self.memory = memory if memory is not None else ResultCache()
        self._disk = disk
        self._tier_lock = threading.Lock()

    @property
    def disk(self) -> Optional[DiskCache]:
        return self._disk

    def attach_disk(self, disk: Optional[DiskCache]) -> None:
        """Install (or with ``None`` remove) the persistent tier."""
        with self._tier_lock:
            self._disk = disk

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Tuple[bool, Any]:
        found, value = self.memory.get(key)
        if found:
            return True, value
        disk = self._disk
        if disk is None:
            return False, None
        found, value = disk.get(key)
        if found:
            self.memory.put(key, value)
            return True, value
        return False, None

    def put(self, key: str, value: Any) -> None:
        self.memory.put(key, value)
        disk = self._disk
        if disk is not None:
            disk.put(key, value)

    def clear(self) -> None:
        self.memory.clear()
        disk = self._disk
        if disk is not None:
            disk.clear()

    def __contains__(self, key: str) -> bool:
        if key in self.memory:
            return True
        disk = self._disk
        return disk is not None and key in disk

    def __len__(self) -> int:
        return len(self.memory)

    @property
    def stats(self) -> CacheStats:
        """Effective stats across tiers.

        A request that misses memory but hits disk is one *hit*; only a miss
        in the lowest tier is an effective miss.  Per-tier counters stay
        available on ``memory.stats`` / ``disk.stats``.
        """
        memory = self.memory.stats
        disk = self._disk.stats if self._disk is not None else None
        if disk is None:
            return memory.snapshot()
        return CacheStats(
            hits=memory.hits + disk.hits,
            misses=disk.misses,
            evictions=memory.evictions + disk.evictions,
            corruptions=disk.corruptions,
            write_failures=disk.write_failures,
        )

    def __repr__(self) -> str:
        return f"<TieredCache memory={self.memory!r} disk={self._disk!r}>"


_shared_cache: Optional[TieredCache] = None
_shared_lock = threading.Lock()


def shared_cache() -> TieredCache:
    """The process-wide tiered result cache shared by every engine by default.

    Sharing is what lets a corrected ChatVis script re-use the unchanged
    prefix of the previous iteration's pipeline, and lets identical pipelines
    in different sessions share results.

    The facade always exists; whether a persistent disk tier sits beneath the
    in-memory LRU is controlled by :func:`configure_shared_cache` or, at
    first use, the ``REPRO_CACHE_DIR`` environment variable.

    Retention of the memory tier is bounded by the LRU cap (``max_entries``),
    not by session lifetime — ``state.reset_session()`` deliberately does not
    touch it.  Long-lived processes that want the memory back between
    experiments should call ``shared_cache().clear()``.
    """
    global _shared_cache
    with _shared_lock:
        if _shared_cache is None:
            _shared_cache = TieredCache(ResultCache(max_entries=1024))
            root = os.environ.get(CACHE_DIR_ENV_VAR)
            if root:
                _shared_cache.attach_disk(DiskCache(root))
        return _shared_cache


def configure_shared_cache(
    cache_dir: Optional[Union[str, Path]],
    max_bytes: Optional[int] = None,
) -> TieredCache:
    """Attach a persistent disk tier to the shared cache (``None`` detaches).

    Returns the shared facade.  Safe to call at any time: engines hold the
    facade, not the tiers, so the new tier takes effect immediately for all
    of them — this is how the CLI and process-pool workers bootstrap their
    cache from a plain path argument.
    """
    cache = shared_cache()
    if cache_dir is None:
        cache.attach_disk(None)
    elif max_bytes is None:
        cache.attach_disk(DiskCache(cache_dir))
    else:
        cache.attach_disk(DiskCache(cache_dir, max_bytes=max_bytes))
    return cache
