"""Content-addressed result cache.

Every node execution is keyed on ``(spec name, normalized properties,
extra cache token, upstream keys)``.  Because upstream keys chain the same
way, a key is a digest of the *entire* upstream pipeline description — two
structurally identical pipelines (even built by different sessions) map to
the same keys and share results, while changing any property invalidates
exactly the downstream subgraph.

Raw :class:`~repro.datamodel.dataset.Dataset` objects appearing as inputs or
property values are folded in via their content fingerprint
(:meth:`Dataset.content_fingerprint`), so "the same data" caches equal even
when the object identity differs.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["normalize_value", "node_key", "CacheStats", "ResultCache", "shared_cache"]


def normalize_value(value: Any) -> Any:
    """Canonicalize a property value into a repr-stable structure.

    Handles numbers, strings, lists/tuples, dicts, numpy scalars and arrays,
    and datasets (by content fingerprint).  The result round-trips through
    ``repr`` deterministically, which is all the key derivation needs.
    """
    from repro.datamodel.dataset import Dataset

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return ("ndarray", str(value.dtype), value.shape, value.tobytes().hex())
    if isinstance(value, Dataset):
        return ("dataset", value.content_fingerprint())
    if isinstance(value, (list, tuple)):
        return [normalize_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): normalize_value(v) for k, v in sorted(value.items())}
    # property-group views and similar
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return normalize_value(as_dict())
    return repr(value)


def node_key(
    spec_name: str,
    properties: Dict[str, Any],
    upstream_keys: Iterable[str] = (),
    token: Any = None,
) -> str:
    """Derive the cache key of one node from its full upstream description."""
    hasher = hashlib.sha1()
    hasher.update(spec_name.encode("utf-8"))
    hasher.update(repr(normalize_value(properties)).encode("utf-8"))
    if token is not None:
        hasher.update(repr(normalize_value(token)).encode("utf-8"))
    for upstream in upstream_keys:
        hasher.update(upstream.encode("utf-8"))
    return hasher.hexdigest()


class CacheStats:
    """Hit/miss/eviction counters (snapshot-friendly)."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
        )

    def __repr__(self) -> str:
        return f"CacheStats(hits={self.hits}, misses={self.misses}, evictions={self.evictions})"


class ResultCache:
    """A thread-safe LRU mapping of node key → executed output."""

    def __init__(self, max_entries: Optional[int] = 1024) -> None:
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def get(self, key: str) -> Tuple[bool, Any]:
        """Returns ``(found, value)`` and updates the counters."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True, self._entries[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return f"<ResultCache entries={len(self)} {self.stats!r}>"


_shared_cache: Optional[ResultCache] = None
_shared_lock = threading.Lock()


def shared_cache() -> ResultCache:
    """The process-wide result cache shared by every engine by default.

    Sharing is what lets a corrected ChatVis script re-use the unchanged
    prefix of the previous iteration's pipeline, and lets identical pipelines
    in different sessions share results.

    Retention is bounded by the LRU cap (``max_entries``), not by session
    lifetime — ``state.reset_session()`` deliberately does not touch it.
    Long-lived processes that want the memory back between experiments
    should call ``shared_cache().clear()`` (or lower ``max_entries``).
    """
    global _shared_cache
    with _shared_lock:
        if _shared_cache is None:
            _shared_cache = ResultCache(max_entries=1024)
        return _shared_cache
