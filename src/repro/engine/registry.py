"""Declarative filter registry.

Filters and sources are registered as *specs*: a name, a property table
(with defaults), optional nested property groups, and an execute function
that receives an :class:`ExecContext`.  The registry is the single source of
truth for what a filter is — the ``pvsim`` layer generates its
ParaView-compatible proxy classes from these specs, and the engine's fluent
API (:mod:`repro.engine.api`) lets non-ParaView callers drive the same
filters programmatically::

    @register_filter("Shift", properties={"Offset": [0.0, 0.0, 0.0]})
    def _shift(ctx):
        dataset = ctx.input()
        ...

Property tables double as validation: the generated proxies reject unknown
property names with ``AttributeError`` (the hallucination signal ChatVis's
correction loop depends on), and the engine's result cache keys on the
normalized property values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.engine.errors import NodeExecutionError, RegistryError

__all__ = [
    "FilterSpec",
    "ExecContext",
    "PropertyView",
    "register_filter",
    "register_source",
    "get_spec",
    "has_spec",
    "all_specs",
    "spec_names",
    "DATASET_SPEC",
]

#: name of the built-in spec wrapping a raw dataset handed directly to a filter
DATASET_SPEC = "__dataset__"


@dataclass
class FilterSpec:
    """Declarative description of one pipeline stage kind."""

    name: str
    label: str
    kind: str  #: "source" or "filter"
    properties: Dict[str, Any] = field(default_factory=dict)
    groups: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: allowed string selections per group (e.g. StreamTracer seed types)
    group_kinds: Dict[str, Set[str]] = field(default_factory=dict)
    execute: Callable[["ExecContext"], Any] = None  # type: ignore[assignment]
    #: optional extra cache-key material (e.g. file mtime for readers); called
    #: with the ExecContext, return value must be repr-stable
    cache_token: Optional[Callable[["ExecContext"], Any]] = None
    description: str = ""

    @property
    def is_source(self) -> bool:
        return self.kind == "source"


class PropertyView:
    """Read-only attribute access over a property-group dict."""

    __slots__ = ("_name", "_values")

    def __init__(self, name: str, values: Dict[str, Any]) -> None:
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_values", dict(values))

    def __getattr__(self, name: str) -> Any:
        values = object.__getattribute__(self, "_values")
        if name in values:
            return values[name]
        raise AttributeError(f"group {object.__getattribute__(self, '_name')!r} has no value {name!r}")

    def as_dict(self) -> Dict[str, Any]:
        return dict(object.__getattribute__(self, "_values"))

    def __repr__(self) -> str:
        return f"<PropertyView {object.__getattribute__(self, '_name')} {self.as_dict()}>"


class ExecContext:
    """Everything a spec's execute function can see for one node.

    Instances are built by the engine per node execution: resolved upstream
    datasets, the node's property values (groups included), and error helpers
    that name the failing node so tracebacks are actionable.
    """

    def __init__(
        self,
        spec: FilterSpec,
        node_name: str,
        properties: Dict[str, Any],
        inputs: Sequence[Any] = (),
        error_class: type = NodeExecutionError,
    ) -> None:
        self.spec = spec
        self.node_name = node_name
        self.properties = properties
        self.inputs = list(inputs)
        self.error_class = error_class

    # ------------------------------------------------------------------ #
    def get(self, name: str, default: Any = None) -> Any:
        """A property value (falling back to the spec default, then ``default``)."""
        if name in self.properties:
            return self.properties[name]
        if name in self.spec.properties:
            return self.spec.properties[name]
        return default

    def group(self, name: str) -> PropertyView:
        """Attribute-style access to a property group's values."""
        defaults = dict(self.spec.groups.get(name, {}))
        value = self.properties.get(name)
        if isinstance(value, PropertyView):
            value = value.as_dict()
        if isinstance(value, dict):
            defaults.update(value)
        return PropertyView(f"{self.spec.label}.{name}", defaults)

    def group_kind(self, name: str, default: str = "") -> str:
        """The string selection of a group (e.g. ``SeedType = 'Point Cloud'``)."""
        return str(self.properties.get(f"_{name}Kind", default))

    def input(self, index: int = 0) -> Any:
        """The resolved upstream dataset (raises a named error if absent)."""
        if index >= len(self.inputs):
            self.error("has no Input and no active source is set" if index == 0 else f"has no input #{index}")
        return self.inputs[index]

    def error(self, message: str) -> None:
        """Raise the layer's pipeline error, naming this node."""
        raise self.error_class(f"{self.spec.label} {self.node_name!r}: {message}")


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, FilterSpec] = {}

#: modules that register the standard spec set on import; loaded lazily so a
#: programmatic engine caller gets the full filter suite without having to
#: import the ParaView-compatible layer first
_SPEC_PROVIDERS = ["repro.pvsim.sources", "repro.pvsim.filters"]
_providers_loaded = False


def _ensure_providers_loaded() -> None:
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True
    import importlib

    for module in _SPEC_PROVIDERS:
        importlib.import_module(module)


def register_filter(
    name: str,
    *,
    properties: Optional[Dict[str, Any]] = None,
    groups: Optional[Dict[str, Dict[str, Any]]] = None,
    group_kinds: Optional[Dict[str, Sequence[str]]] = None,
    kind: str = "filter",
    label: Optional[str] = None,
    cache_token: Optional[Callable[[ExecContext], Any]] = None,
    description: str = "",
) -> Callable[[Callable[[ExecContext], Any]], Callable[[ExecContext], Any]]:
    """Register a pipeline-stage spec; decorates the execute function.

    The decorated function still works as a plain function (it receives an
    :class:`ExecContext`), and the spec becomes available to the engine, the
    fluent API and the ``pvsim`` proxy factory under ``name``.
    """
    if kind not in ("source", "filter"):
        raise RegistryError(f"invalid spec kind {kind!r} (expected 'source' or 'filter')")

    def decorator(func: Callable[[ExecContext], Any]) -> Callable[[ExecContext], Any]:
        if name in _REGISTRY:
            raise RegistryError(f"filter spec {name!r} is already registered")
        doc_summary = (func.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = FilterSpec(
            name=name,
            label=label or name,
            kind=kind,
            properties=dict(properties or {}),
            groups={g: dict(v) for g, v in (groups or {}).items()},
            group_kinds={g: {str(k).lower() for k in v} for g, v in (group_kinds or {}).items()},
            execute=func,
            cache_token=cache_token,
            description=description or (doc_summary[0] if doc_summary else ""),
        )
        return func

    return decorator


def register_source(name: str, **kwargs: Any):
    """Shorthand for ``register_filter(name, kind='source', ...)``."""
    kwargs["kind"] = "source"
    return register_filter(name, **kwargs)


def get_spec(name: str) -> FilterSpec:
    if name not in _REGISTRY:
        _ensure_providers_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"no filter spec registered under {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def has_spec(name: str) -> bool:
    if name not in _REGISTRY:
        _ensure_providers_loaded()
    return name in _REGISTRY


def all_specs() -> List[FilterSpec]:
    _ensure_providers_loaded()
    return list(_REGISTRY.values())


def spec_names() -> List[str]:
    _ensure_providers_loaded()
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------- #
# built-in: a raw dataset as a pipeline source
# --------------------------------------------------------------------------- #
@register_source(
    DATASET_SPEC,
    label="DatasetSource",
    properties={"dataset": None},
    description="Wraps a raw Dataset object handed directly into a pipeline.",
)
def _dataset_source(ctx: ExecContext) -> Any:
    dataset = ctx.get("dataset")
    if dataset is None:
        ctx.error("no dataset attached")
    return dataset
