"""Explicit pipeline graphs: nodes, edges, topological execution order.

A :class:`PipelineGraph` is the engine's unit of work.  Nodes name a
registered filter spec and carry that node's property values; edges express
dataflow (upstream output → downstream input).  The graph is a DAG: cycle
detection runs on every ordering request, and a cycle raises
:class:`~repro.engine.errors.GraphCycleError` instead of hanging execution
the way the old implicit proxy-chasing could.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.engine.errors import GraphCycleError, GraphError

__all__ = ["Node", "PipelineGraph"]

_NODE_COUNTER = itertools.count(1)


class Node:
    """One pipeline stage: a spec name, its properties and its inputs."""

    __slots__ = ("id", "spec_name", "name", "properties", "inputs")

    def __init__(
        self,
        node_id: str,
        spec_name: str,
        name: str,
        properties: Optional[Dict[str, Any]] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> None:
        self.id = node_id
        self.spec_name = spec_name
        #: human-facing name (e.g. the ParaView registration name "Contour1")
        self.name = name
        self.properties: Dict[str, Any] = dict(properties or {})
        self.inputs: List[str] = list(inputs or [])

    def __repr__(self) -> str:
        return f"<Node {self.id} spec={self.spec_name!r} name={self.name!r} inputs={self.inputs}>"


class PipelineGraph:
    """A directed acyclic graph of pipeline nodes."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        spec_name: str,
        properties: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
        inputs: Sequence[str] = (),
        node_id: Optional[str] = None,
    ) -> Node:
        """Add a node; returns it.  ``inputs`` are upstream node ids."""
        nid = node_id or f"n{next(_NODE_COUNTER)}"
        if nid in self._nodes:
            raise GraphError(f"duplicate node id {nid!r}")
        for upstream in inputs:
            if upstream not in self._nodes:
                raise GraphError(f"unknown upstream node {upstream!r} for {nid!r}")
        node = Node(nid, spec_name, name or f"{spec_name}:{nid}", properties, inputs)
        self._nodes[nid] = node
        return node

    def connect(self, upstream: str, downstream: str) -> None:
        """Add a dataflow edge upstream → downstream."""
        if upstream not in self._nodes:
            raise GraphError(f"unknown node {upstream!r}")
        dst = self.node(downstream)
        if upstream not in dst.inputs:
            dst.inputs.append(upstream)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def ancestors(self, node_id: str) -> Set[str]:
        """All transitive upstream node ids of ``node_id`` (excluded itself)."""
        seen: Set[str] = set()
        stack = list(self.node(node_id).inputs)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.node(current).inputs)
        return seen

    def descendants(self, node_id: str) -> Set[str]:
        """All transitive downstream node ids of ``node_id``."""
        self.node(node_id)
        seen: Set[str] = set()
        frontier = {node_id}
        while frontier:
            next_frontier = {
                n.id
                for n in self._nodes.values()
                if n.id not in seen and n.id != node_id and any(i in frontier for i in n.inputs)
            }
            seen |= next_frontier
            frontier = next_frontier
        return seen

    # ------------------------------------------------------------------ #
    # ordering
    # ------------------------------------------------------------------ #
    def topological_order(self, targets: Optional[Iterable[str]] = None) -> List[Node]:
        """Execution order for ``targets`` (default: the whole graph).

        The order contains each target and all of its ancestors, upstream
        first.  Raises :class:`GraphCycleError` if the relevant subgraph is
        cyclic.
        """
        if targets is None:
            wanted = set(self._nodes)
        else:
            wanted = set()
            for target in targets:
                wanted.add(self.node(target).id)
                wanted |= self.ancestors(target)

        order: List[Node] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node_id: str, chain: List[str]) -> None:
            mark = state.get(node_id)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain[chain.index(node_id):] + [node_id])
                raise GraphCycleError(f"pipeline graph contains a cycle: {cycle}")
            state[node_id] = 0
            chain.append(node_id)
            for upstream in self.node(node_id).inputs:
                visit(upstream, chain)
            chain.pop()
            state[node_id] = 1
            order.append(self._nodes[node_id])

        for node_id in sorted(wanted):
            visit(node_id, [])
        return order

    def __repr__(self) -> str:
        return f"<PipelineGraph nodes={len(self._nodes)}>"
