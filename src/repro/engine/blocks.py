"""Block-decomposed, out-of-core execution of the geometric filters.

The whole-dataset algorithms in :mod:`repro.algorithms` assume the input
fits in memory.  This module removes that cap for the four cell-local
operations (contour / slice / threshold / clip) by partitioning the input
into axis-aligned sub-extents (:class:`ImageData`) or contiguous cell-range
shards (:class:`UnstructuredGrid`), executing each block independently
through :func:`repro.engine.batch.run_batch`, and merging the per-block
results back into whole-dataset output:

* **Partitioning** honours the VTK ``i + nx*(j + ny*k)`` point convention:
  image data is sliced into slabs along the *slowest-varying* axis that has
  cells, so each slab is a contiguous range of the global cell order and
  block-order concatenation reproduces whole-dataset cell order exactly.
  Unstructured grids shard into contiguous cell ranges, with ``ghost``
  rings of neighbouring cells pulled in through shared points.
* **Ghost semantics** — every op here is cell-local, so ghost layers are
  never needed for *correctness*: they only produce duplicate geometry in
  the overlap, which the merge removes (triangle dedup for contour/slice)
  or which ownership restriction avoids entirely (threshold/clip execute
  on owned cells only).
* **Caching** — each block result lands in the shared content-addressed
  tiered cache under a ``(parent fingerprint, block extent, ghost width,
  op params)`` key, so re-runs and overlapping decompositions reuse work
  across thread *and* process executors.
* **Merging** — threshold is rebuilt *byte-exactly* over the parent point
  set (the whole-dataset filter keeps the uncompacted parent points and
  appends passing cells in global order, which the owned-cell shards
  reproduce).  Contour/slice/clip merge by offset concatenation plus a
  quantized point-coincidence weld; they are geometrically equivalent to
  the whole run but may order/tessellate points differently.

Activation is scoped and thread-local: wrap a computation in
:func:`blocked_execution` and every supported pvsim filter evaluated on
that thread routes through :func:`maybe_run_blocked`; worker threads and
processes get fresh thread-locals, so block jobs themselves never nest.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datamodel import CellType, Dataset, ImageData, PolyData, UnstructuredGrid
from repro.engine.batch import BatchJob, run_batch
from repro.engine.cache import node_key, shared_cache
from repro.obs.metrics import METRICS
from repro.obs.trace import span as obs_span

__all__ = [
    "BlocksConfig",
    "BlockRunStats",
    "BlockSet",
    "ImageBlock",
    "GridBlock",
    "SUPPORTED_OPS",
    "blocked_execution",
    "active_config",
    "stats_snapshot",
    "partition_dataset",
    "partition_image_data",
    "partition_unstructured",
    "merge_polydata_blocks",
    "merge_unstructured_blocks",
    "merge_threshold_blocks",
    "run_blocked",
    "maybe_run_blocked",
]

#: operations with a block-decomposed execution path
SUPPORTED_OPS = ("contour", "slice", "threshold", "clip")


# --------------------------------------------------------------------------- #
# configuration and per-run statistics
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BlocksConfig:
    """How to decompose and execute: block count, ghost width, batch runner."""

    n_blocks: int
    ghost: int = 1
    executor: str = "thread"
    max_workers: int = 2
    cache_dir: Optional[Union[str, Path]] = None


@dataclass
class BlockRunStats:
    """Counters for one :func:`blocked_execution` scope."""

    runs: int = 0
    blocks_total: int = 0
    blocks_cached: int = 0
    blocks_executed: int = 0
    cells_produced: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "BlockRunStats":
        return BlockRunStats(
            self.runs,
            self.blocks_total,
            self.blocks_cached,
            self.blocks_executed,
            self.cells_produced,
            dict(self.by_op),
        )

    def delta(self, earlier: "BlockRunStats") -> "BlockRunStats":
        by_op = {
            op: count - earlier.by_op.get(op, 0)
            for op, count in self.by_op.items()
            if count - earlier.by_op.get(op, 0)
        }
        return BlockRunStats(
            self.runs - earlier.runs,
            self.blocks_total - earlier.blocks_total,
            self.blocks_cached - earlier.blocks_cached,
            self.blocks_executed - earlier.blocks_executed,
            self.cells_produced - earlier.cells_produced,
            by_op,
        )


class _BlocksState(threading.local):
    """Thread-local activation: fresh (inactive) in every new thread."""

    config: Optional[BlocksConfig] = None
    stats: Optional[BlockRunStats] = None


BLOCKS_STATE = _BlocksState()


@contextmanager
def blocked_execution(config: BlocksConfig) -> Iterator[BlockRunStats]:
    """Route supported filters on this thread through block decomposition."""
    previous = (BLOCKS_STATE.config, BLOCKS_STATE.stats)
    BLOCKS_STATE.config = config
    BLOCKS_STATE.stats = BlockRunStats()
    try:
        yield BLOCKS_STATE.stats
    finally:
        BLOCKS_STATE.config, BLOCKS_STATE.stats = previous


def active_config() -> Optional[BlocksConfig]:
    """The :class:`BlocksConfig` active on this thread, if any."""
    return BLOCKS_STATE.config


def stats_snapshot() -> BlockRunStats:
    """A copy of this thread's live counters (zeros when blocking is off)."""
    stats = BLOCKS_STATE.stats
    return stats.snapshot() if stats is not None else BlockRunStats()


# --------------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------------- #
@dataclass
class ImageBlock:
    """One slab of an :class:`ImageData` along ``axis``.

    ``owned`` / ``ghosted`` are cell ranges ``[lo, hi)`` along the partition
    axis in *parent* lattice coordinates; ``data`` is the extracted ghosted
    sub-image (its origin shifted so coordinates stay in parent space).
    """

    index: int
    axis: int
    owned: Tuple[int, int]
    ghosted: Tuple[int, int]
    parent_dims: Tuple[int, int, int]
    data: ImageData


@dataclass
class GridBlock:
    """One contiguous cell-range shard of an :class:`UnstructuredGrid`.

    ``cell_ids`` lists the included global cell ids in ascending (global)
    order; ``owned_mask`` marks which of them belong to this shard's owned
    range (the rest are ghosts); ``point_ids`` maps local point id → global
    point id.
    """

    index: int
    owned: Tuple[int, int]
    cell_ids: np.ndarray
    owned_mask: np.ndarray
    point_ids: np.ndarray
    data: UnstructuredGrid


@dataclass
class BlockSet:
    """A complete decomposition of one dataset."""

    kind: str  # "image" | "grid"
    ghost: int
    parent_fingerprint: str
    blocks: List[Any]
    axis: Optional[int] = None

    def __len__(self) -> int:
        return len(self.blocks)


def _extract_sub_image(image: ImageData, axis: int, lo: int, hi: int) -> ImageData:
    """Extract the cell slab ``[lo, hi)`` along ``axis`` as its own ImageData.

    Point slab is ``[lo, hi]`` inclusive; the origin shifts by ``lo`` spacings
    so sub-image coordinates land in parent space (up to last-ulp rounding,
    which is why the merge welds by quantized coincidence, not bytes).
    """
    nx, ny, nz = image.dimensions
    dims = [nx, ny, nz]
    dims[axis] = (hi - lo) + 1
    origin = list(image.origin)
    origin[axis] = origin[axis] + image.spacing[axis] * lo
    sub = ImageData(tuple(dims), origin=tuple(origin), spacing=image.spacing)
    # point arrays live on the (nz, ny, nx) lattice: x fastest in the flat
    # order, so lattice axis `axis` is reshape axis `2 - axis`
    slices: List[slice] = [slice(None), slice(None), slice(None)]
    slices[2 - axis] = slice(lo, hi + 1)  # points lo..hi inclusive
    for name in image.point_data.names():
        values = image.point_data[name].values
        grid = values.reshape(nz, ny, nx, values.shape[1])
        sub.add_point_array(name, grid[tuple(slices)].reshape(-1, values.shape[1]).copy())
    return sub


def _global_point_ids(
    parent_dims: Sequence[int], axis: int, lo: int, hi: int
) -> np.ndarray:
    """Local point id → global point id for the ``[lo, hi]`` point slab."""
    nx, ny, nz = parent_dims
    ldims = [nx, ny, nz]
    ldims[axis] = (hi - lo) + 1
    axes = [np.arange(n, dtype=np.int64) for n in ldims]
    axes[axis] = axes[axis] + lo
    kk, jj, ii = np.meshgrid(axes[2], axes[1], axes[0], indexing="ij")
    return (ii + nx * (jj + ny * kk)).ravel()


def partition_image_data(
    image: ImageData, n_blocks: int, ghost: int = 1
) -> Optional[BlockSet]:
    """Slab-decompose an image along its slowest-varying axis with cells.

    Returns ``None`` when the decomposition degenerates (fewer than two
    cells along every axis, or ``n_blocks < 2``): callers fall back to
    whole-dataset execution.  Partitioning along the *last* axis with cells
    keeps every slab a contiguous range of the global ``i + cx*(j + cy*k)``
    cell order, which is what makes the threshold merge byte-exact.
    """
    cdims = image.cell_dimensions
    axis = next((a for a in (2, 1, 0) if cdims[a] > 0), None)
    if axis is None:
        return None
    cells = cdims[axis]
    n = min(int(n_blocks), cells)
    if n < 2:
        return None
    ghost = max(int(ghost), 0)
    blocks: List[ImageBlock] = []
    for b in range(n):
        c0 = b * cells // n
        c1 = (b + 1) * cells // n
        g0 = max(c0 - ghost, 0)
        g1 = min(c1 + ghost, cells)
        blocks.append(
            ImageBlock(
                index=b,
                axis=axis,
                owned=(c0, c1),
                ghosted=(g0, g1),
                parent_dims=image.dimensions,
                data=_extract_sub_image(image, axis, g0, g1),
            )
        )
    return BlockSet(
        kind="image",
        ghost=ghost,
        parent_fingerprint=image.content_fingerprint(),
        blocks=blocks,
        axis=axis,
    )


def partition_unstructured(
    grid: UnstructuredGrid, n_blocks: int, ghost: int = 1
) -> Optional[BlockSet]:
    """Shard a grid into contiguous cell ranges with point-adjacency ghosts."""
    n_cells = grid.n_cells
    n = min(int(n_blocks), n_cells)
    if n < 2:
        return None
    ghost = max(int(ghost), 0)
    cell_list = list(grid.cells())
    point_cells: Dict[int, List[int]] = defaultdict(list)
    for cid, (_ctype, conn) in enumerate(cell_list):
        for p in conn:
            point_cells[int(p)].append(cid)
    points = grid.get_points()

    blocks: List[GridBlock] = []
    for b in range(n):
        c0 = b * n_cells // n
        c1 = (b + 1) * n_cells // n
        included = set(range(c0, c1))
        frontier = included
        for _ in range(ghost):
            boundary = {int(p) for cid in frontier for p in cell_list[cid][1]}
            neighbours = {cid for p in boundary for cid in point_cells[p]} - included
            if not neighbours:
                break
            included |= neighbours
            frontier = neighbours
        cell_ids = np.asarray(sorted(included), dtype=np.int64)
        owned_mask = (cell_ids >= c0) & (cell_ids < c1)
        pid_list = sorted({int(p) for cid in cell_ids for p in cell_list[cid][1]})
        point_ids = np.asarray(pid_list, dtype=np.int64)
        local_of = {g: l for l, g in enumerate(pid_list)}
        data = UnstructuredGrid(points[point_ids].copy() if len(point_ids) else None)
        for name in grid.point_data.names():
            data.add_point_array(name, grid.point_data[name].values[point_ids].copy())
        for cid in cell_ids:
            ctype, conn = cell_list[int(cid)]
            data.add_cell(ctype, tuple(local_of[int(p)] for p in conn))
        blocks.append(
            GridBlock(
                index=b,
                owned=(c0, c1),
                cell_ids=cell_ids,
                owned_mask=owned_mask,
                point_ids=point_ids,
                data=data,
            )
        )
    return BlockSet(
        kind="grid",
        ghost=ghost,
        parent_fingerprint=grid.content_fingerprint(),
        blocks=blocks,
    )


def partition_dataset(
    dataset: Dataset, n_blocks: int, ghost: int = 1
) -> Optional[BlockSet]:
    """Partition any supported dataset; ``None`` when not decomposable."""
    if isinstance(dataset, ImageData):
        return partition_image_data(dataset, n_blocks, ghost)
    if isinstance(dataset, UnstructuredGrid):
        return partition_unstructured(dataset, n_blocks, ghost)
    return None


# --------------------------------------------------------------------------- #
# the point-coincidence weld
# --------------------------------------------------------------------------- #
def _weld_tolerance(dataset: Dataset) -> float:
    """A coincidence quantum far below feature size but above ulp noise."""
    spacing = getattr(dataset, "spacing", None)
    if spacing is not None:
        return float(min(spacing)) * 1e-6
    points = dataset.get_points()
    finite = points[np.isfinite(points).all(axis=1)] if len(points) else points
    if len(finite) == 0:
        return 1e-9
    diagonal = float(np.linalg.norm(finite.max(axis=0) - finite.min(axis=0)))
    return max(diagonal, 1.0) * 1e-9


def _weld_points(points: np.ndarray, tol: float) -> Tuple[np.ndarray, np.ndarray]:
    """First-occurrence weld of coincident rows.

    Returns ``(rep_rows, new_of_old)``: the original row index of each output
    point (in first-occurrence order) and the output id of every input row.
    Rows with non-finite coordinates get unique sentinel keys so NaN
    geometry is carried through unwelded instead of crashing an int cast.
    """
    n = len(points)
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    finite = np.isfinite(points).all(axis=1)
    keys = np.zeros((n, 4), dtype=np.int64)
    keys[:, :3] = np.round(np.where(np.isfinite(points), points, 0.0) / tol).astype(
        np.int64
    )
    keys[~finite, 3] = np.flatnonzero(~finite) + 1
    _uniq, first, inverse = np.unique(keys, axis=0, return_index=True, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return first[order], rank[inverse]


def _common_array_names(pieces: Sequence[Dataset]) -> List[str]:
    names = set(pieces[0].point_data.names())
    for piece in pieces[1:]:
        names &= set(piece.point_data.names())
    return [name for name in pieces[0].point_data.names() if name in names]


def merge_polydata_blocks(pieces: Sequence[PolyData], tol: float) -> PolyData:
    """Concatenate PolyData blocks, weld coincident points, drop ghost dups.

    Duplicate triangles/verts/lines — the same geometry emitted by two
    blocks whose ghost regions overlap — are identified by their welded,
    order-normalized connectivity and kept once, at first occurrence.
    """
    pieces = [p for p in pieces if p.n_points > 0]
    if not pieces:
        return PolyData()
    names = _common_array_names(pieces)
    points = np.vstack([p.points for p in pieces])
    offsets = np.cumsum([0] + [p.n_points for p in pieces])[:-1]
    rep_rows, new_of_old = _weld_points(points, tol)

    tri_parts = [p.triangles + off for p, off in zip(pieces, offsets) if p.n_triangles]
    tris = new_of_old[np.vstack(tri_parts)] if tri_parts else np.zeros((0, 3), np.int64)
    if len(tris):
        # welding can collapse boundary slivers (the surface grazing a block
        # seam) onto repeated vertices — drop those zero-area artifacts
        distinct = (
            (tris[:, 0] != tris[:, 1])
            & (tris[:, 1] != tris[:, 2])
            & (tris[:, 0] != tris[:, 2])
        )
        tris = tris[distinct]
    if len(tris):
        _u, first = np.unique(np.sort(tris, axis=1), axis=0, return_index=True)
        tris = tris[np.sort(first)]

    vert_parts = [p.verts + off for p, off in zip(pieces, offsets) if p.n_verts]
    verts = new_of_old[np.concatenate(vert_parts)] if vert_parts else np.zeros(0, np.int64)
    if len(verts):
        _u, first = np.unique(verts, return_index=True)
        verts = verts[np.sort(first)]

    lines: List[np.ndarray] = []
    seen_lines = set()
    for piece, off in zip(pieces, offsets):
        for line in piece.lines:
            mapped = new_of_old[line + off]
            key = tuple(mapped.tolist())
            canonical = min(key, key[::-1])
            if canonical in seen_lines:
                continue
            seen_lines.add(canonical)
            lines.append(mapped)

    out = PolyData(points[rep_rows], tris, lines, verts)
    for name in names:
        stacked = np.vstack([p.point_data[name].values for p in pieces])
        out.add_point_array(name, stacked[rep_rows])
    return out


def merge_unstructured_blocks(
    pieces: Sequence[UnstructuredGrid], tol: float
) -> UnstructuredGrid:
    """Concatenate UnstructuredGrid blocks and weld coincident points.

    Cell dedup happens by ghost *ownership*: block jobs for whole-cell ops
    execute on owned cells only, so no cell is ever produced twice and the
    merge only has to weld the shared boundary-face points.
    """
    pieces = [p for p in pieces if p.n_points > 0]
    if not pieces:
        return UnstructuredGrid()
    names = _common_array_names(pieces)
    points = np.vstack([p.get_points() for p in pieces])
    offsets = np.cumsum([0] + [p.n_points for p in pieces])[:-1]
    rep_rows, new_of_old = _weld_points(points, tol)
    out = UnstructuredGrid(points[rep_rows])
    for name in names:
        stacked = np.vstack([p.point_data[name].values for p in pieces])
        out.add_point_array(name, stacked[rep_rows])
    for piece, off in zip(pieces, offsets):
        for ctype, conn in piece.cells():
            out.add_cell(ctype, tuple(int(new_of_old[off + c]) for c in conn))
    return out


def merge_threshold_blocks(
    parent: Dataset, block_cells: Sequence[Sequence[Tuple[int, Sequence[int]]]]
) -> UnstructuredGrid:
    """Rebuild the whole-dataset threshold output from per-block cells.

    Mirrors :func:`repro.algorithms.threshold.threshold` exactly: the parent
    point set (uncompacted) plus every point array, with the passing cells —
    already remapped to global connectivity by the block jobs — appended in
    global cell order (blocks are contiguous, ordered ranges of it).
    """
    out = UnstructuredGrid(parent.get_points().copy())
    for name in parent.point_data.names():
        out.add_point_array(name, parent.point_data[name].values.copy())
    for cells in block_cells:
        for ctype, conn in cells:
            out.add_cell(int(ctype), tuple(int(p) for p in conn))
    return out


# --------------------------------------------------------------------------- #
# per-block execution (module-level: crosses the process-pool pickle boundary)
# --------------------------------------------------------------------------- #
def _owned_only_grid(block: GridBlock) -> UnstructuredGrid:
    """This shard's owned cells as a standalone grid (ghosts stripped)."""
    data = block.data
    owned = UnstructuredGrid(data.get_points().copy())
    for name in data.point_data.names():
        owned.add_point_array(name, data.point_data[name].values.copy())
    for (ctype, conn), keep in zip(data.cells(), block.owned_mask):
        if keep:
            owned.add_cell(ctype, conn)
    return owned


def _owned_only_image(block: ImageBlock) -> ImageData:
    """This slab's owned cell range as a standalone sub-image."""
    g0, _g1 = block.ghosted
    c0, c1 = block.owned
    return _extract_sub_image(block.data, block.axis, c0 - g0, c1 - g0)


def _image_threshold_cells(
    block: ImageBlock, params: Dict[str, Any]
) -> List[Tuple[int, List[int]]]:
    """Threshold the ghosted slab, keep owned tets, remap to global ids.

    The Freudenthal 6-tet split is translation-invariant per cell, so the
    slab's tets for a given cell are the (locally-numbered) image of the
    whole dataset's — restricting to cells whose base lattice index along
    the partition axis falls in the owned range reproduces the global
    enumeration exactly.
    """
    from repro.algorithms import threshold as threshold_filter

    out = threshold_filter(
        block.data,
        array_name=params.get("array_name"),
        lower=params["lower"],
        upper=params["upper"],
        all_points=params["all_points"],
    )
    conns = np.asarray([conn for _ctype, conn in out.cells()], dtype=np.int64).reshape(
        -1, 4
    )
    if not len(conns):
        return []
    g0, g1 = block.ghosted
    c0, c1 = block.owned
    lnx, lny, _lnz = block.data.dimensions
    lattice = (conns % lnx, (conns // lnx) % lny, conns // (lnx * lny))[block.axis]
    base = lattice.min(axis=1) + g0
    kept = conns[(base >= c0) & (base < c1)]
    gmap = _global_point_ids(block.parent_dims, block.axis, g0, g1)
    return [(int(CellType.TETRA), row.tolist()) for row in gmap[kept]]


def _grid_threshold_cells(
    block: GridBlock, params: Dict[str, Any]
) -> List[Tuple[int, List[int]]]:
    """Threshold the owned cells of one shard, remapped to global point ids."""
    from repro.algorithms import threshold as threshold_filter

    out = threshold_filter(
        _owned_only_grid(block),
        array_name=params.get("array_name"),
        lower=params["lower"],
        upper=params["upper"],
        all_points=params["all_points"],
    )
    pids = block.point_ids
    return [
        (int(ctype), [int(pids[int(p)]) for p in conn]) for ctype, conn in out.cells()
    ]


def _execute_block_op(op: str, kind: str, block: Any, params: Dict[str, Any]) -> Any:
    from repro.algorithms import clip_dataset, contour as contour_filter, slice_dataset

    if op == "contour":
        # normals are attached post-merge over the welded surface; per-block
        # normals would be wrong along block seams anyway
        return contour_filter(
            block.data,
            params["isovalues"],
            array_name=params.get("array_name"),
            compute_normals=False,
        )
    if op == "slice":
        return slice_dataset(block.data, origin=params["origin"], normal=params["normal"])
    if op == "threshold":
        if kind == "image":
            return _image_threshold_cells(block, params)
        return _grid_threshold_cells(block, params)
    if op == "clip":
        owned = _owned_only_image(block) if kind == "image" else _owned_only_grid(block)
        return clip_dataset(
            owned,
            origin=params["origin"],
            normal=params["normal"],
            keep_negative=params["keep_negative"],
        )
    raise ValueError(f"unsupported blocked op {op!r}")


def _result_cell_count(op: str, value: Any) -> int:
    if op == "threshold":
        return len(value)
    return int(value.n_cells)


def _block_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one block op, consulting the shared tiered cache first."""
    op = payload["op"]
    key = payload["cache_key"]
    cache = shared_cache()
    found, value = cache.get(key)
    if found:
        METRICS.incr("blocks.job.cache_hits", op=op)
        return {"cached": True, "value": value, "n_cells": _result_cell_count(op, value)}
    METRICS.incr("blocks.job.cache_misses", op=op)
    value = _execute_block_op(op, payload["kind"], payload["block"], payload["params"])
    cache.put(key, value)
    return {"cached": False, "value": value, "n_cells": _result_cell_count(op, value)}


# --------------------------------------------------------------------------- #
# the driver
# --------------------------------------------------------------------------- #
def _block_extent(kind: str, block: Any) -> Dict[str, Any]:
    if kind == "image":
        return {
            "axis": block.axis,
            "owned": list(block.owned),
            "ghosted": list(block.ghosted),
            "parent_dims": list(block.parent_dims),
        }
    return {"owned": list(block.owned), "n_cells": int(len(block.cell_ids))}


def _merge(
    op: str,
    parent: Dataset,
    blockset: BlockSet,
    values: List[Any],
    params: Dict[str, Any],
) -> Dataset:
    if op in ("contour", "slice"):
        merged = merge_polydata_blocks(values, _weld_tolerance(parent))
        if op == "contour" and params.get("compute_normals") and merged.n_triangles:
            merged.point_data.add_array("Normals", merged.point_normals())
        return merged
    if op == "threshold":
        return merge_threshold_blocks(parent, values)
    if op == "clip":
        return merge_unstructured_blocks(values, _weld_tolerance(parent))
    raise ValueError(f"unsupported blocked op {op!r}")


def run_blocked(
    op: str,
    dataset: Dataset,
    params: Dict[str, Any],
    config: BlocksConfig,
    stats: Optional[BlockRunStats] = None,
) -> Optional[Dataset]:
    """Partition, execute per block through the batch runner, and merge.

    Returns ``None`` when the dataset does not decompose (unsupported type
    or a degenerate partition) so callers fall back to whole execution.
    Per-block failures re-raise the original exception — blocked execution
    fails the same way whole execution would.
    """
    blockset = partition_dataset(dataset, config.n_blocks, config.ghost)
    if blockset is None:
        return None
    payloads = []
    for block in blockset.blocks:
        key = node_key(
            f"blocks.{op}",
            {
                "parent": blockset.parent_fingerprint,
                "kind": blockset.kind,
                "extent": _block_extent(blockset.kind, block),
                "ghost": blockset.ghost,
                "params": params,
            },
        )
        payloads.append(
            {
                "op": op,
                "kind": blockset.kind,
                "params": params,
                "block": block,
                "cache_key": key,
            }
        )
    with obs_span(
        f"blocks/{op}",
        "blocks.run",
        op=op,
        kind=blockset.kind,
        n_blocks=len(payloads),
        ghost=blockset.ghost,
        executor=config.executor,
    ):
        jobs = [
            BatchJob(name=f"blocks/{op}/{i}", fn=_block_job, args=(payload,))
            for i, payload in enumerate(payloads)
        ]
        results = run_batch(
            jobs,
            max_workers=config.max_workers,
            executor=config.executor,
            cache_dir=config.cache_dir,
        )
        for result in results:
            if result.error is not None:
                raise result.error
        outs = [result.value for result in results]
        # zero-length marker spans: per-block node counts land in the trace
        # even for cache-served blocks, mirroring the engine's cached-node idiom
        for i, out in enumerate(outs):
            with obs_span(
                f"blocks/{op}/{i}",
                "blocks.block",
                op=op,
                index=i,
                cached=bool(out["cached"]),
                n_cells=int(out["n_cells"]),
            ):
                pass
        merged = _merge(op, dataset, blockset, [out["value"] for out in outs], params)

    cached = sum(1 for out in outs if out["cached"])
    executed = len(outs) - cached
    produced = sum(int(out["n_cells"]) for out in outs)
    METRICS.incr("blocks.runs", op=op)
    if executed:
        METRICS.incr("blocks.executed", executed, op=op)
    if cached:
        METRICS.incr("blocks.cached", cached, op=op)
    if stats is not None:
        stats.runs += 1
        stats.blocks_total += len(outs)
        stats.blocks_cached += cached
        stats.blocks_executed += executed
        stats.cells_produced += produced
        stats.by_op[op] = stats.by_op.get(op, 0) + len(outs)
    return merged


def maybe_run_blocked(
    op: str, dataset: Dataset, params: Dict[str, Any]
) -> Optional[Dataset]:
    """Blocked execution when a :func:`blocked_execution` scope is active.

    ``None`` means "no blocking applies here" — wrong op, unsupported
    dataset type, inactive scope, or a degenerate partition — and the caller
    must run the whole-dataset path.
    """
    config = BLOCKS_STATE.config
    if config is None or op not in SUPPORTED_OPS:
        return None
    if not isinstance(dataset, (ImageData, UnstructuredGrid)):
        return None
    return run_blocked(op, dataset, params, config, stats=BLOCKS_STATE.stats)
