"""Concurrent execution of independent sessions/pipelines.

:func:`run_batch` fans a list of independent jobs out over a thread pool or,
with ``executor="process"``, over a pool of worker *processes*
(:class:`ProcessBatchRunner`).  It is the substrate under ``eval.harness``
parallelism: every cell of the Table II model×task matrix is an independent
(deterministic) session, so the matrix regenerates ``max_workers`` times
faster with bit-identical results.

Thread-safety of the thread path relies on the rest of the stack:

* ``pvsim.state`` keeps one session per thread (``threading.local``),
* ``pvsim.executor`` routes stdout/stderr per thread and never calls
  ``os.chdir``,
* the engine's shared result cache is lock-protected (and a win here —
  identical pipelines across jobs share executed results).

The process path trades those shared in-memory structures for real CPU
parallelism (no GIL contention between cells):

* job specs must be **picklable** — module-level functions with plain-data
  arguments (the harness cell functions qualify);
* every worker process bootstraps its own session world on startup and, when
  a ``cache_dir`` is given, attaches the shared *disk* cache tier
  (:func:`~repro.engine.cache.configure_shared_cache`), so workers reuse each
  other's upstream node results through the content-addressed files even
  though they share no memory;
* errors travel back as pickled exceptions; an exception that cannot be
  pickled is replaced by a :class:`WorkerJobError` carrying its rendered
  traceback.

``max_workers=1`` runs the jobs inline in the calling thread, preserving
exact serial semantics for either executor choice.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import METRICS, MetricsSnapshot
from repro.obs.trace import TRACE_STATE, enable_tracing

__all__ = [
    "BatchJob",
    "BatchJobError",
    "BatchResult",
    "CancelledJob",
    "ProcessBatchRunner",
    "WorkerJobError",
    "raise_failures",
    "run_batch",
]


@dataclass
class BatchJob:
    """One independent unit of work.

    For the process executor, ``fn`` must be picklable — in practice a
    module-level function — and ``args``/``kwargs`` plain data.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BatchResult:
    """Outcome of one job (order-aligned with the submitted job list).

    ``obs`` carries a worker process's observability payload —
    ``{"spans": [span dicts], "metrics": snapshot dict}`` — back through the
    result channel when tracing is enabled; the parent merges it into its own
    tracer/registry and callers can ignore it.
    """

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    duration: float = 0.0
    obs: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_one(job: BatchJob) -> BatchResult:
    tracer = TRACE_STATE.tracer  # the disabled path pays only this read
    started = time.perf_counter()
    try:
        if tracer is None:
            value = job.fn(*job.args, **job.kwargs)
        else:
            with tracer.span(job.name, "batch.job"):
                value = job.fn(*job.args, **job.kwargs)
        return BatchResult(job.name, value=value, duration=time.perf_counter() - started)
    except (KeyboardInterrupt, SystemExit):
        # a Ctrl-C must abort the batch, not be recorded as the job's result
        raise
    except BaseException as exc:  # noqa: BLE001 - jobs must not kill the batch
        return BatchResult(job.name, error=exc, duration=time.perf_counter() - started)


class CancelledJob(RuntimeError):
    """Marks a job that never ran because an earlier job failed (stop_on_error)."""


class WorkerJobError(RuntimeError):
    """Stand-in for a worker-process exception that could not be pickled.

    Carries the original error's rendered traceback so nothing is lost even
    though the object itself could not cross the process boundary.
    """


class BatchJobError(RuntimeError):
    """A batch was aborted because one of its jobs failed.

    Mirrors the ``PipelineError`` convention of naming the failing proxy: the
    message leads with the *job name*, so a harness abort says exactly which
    (model, task) cell died, for thread and process runners alike.
    The original exception is chained as ``__cause__`` and kept on
    :attr:`cause`; the job's name is on :attr:`job_name`.
    """

    def __init__(self, job_name: str, cause: BaseException) -> None:
        super().__init__(f"batch job {job_name!r} failed: {type(cause).__name__}: {cause}")
        self.job_name = job_name
        self.cause = cause


def raise_failures(results: Sequence[BatchResult]) -> None:
    """Raise :class:`BatchJobError` for the first real failure, if any.

    Jobs cancelled by ``stop_on_error`` fast-fail (:class:`CancelledJob`) are
    not failures in their own right and never mask the job that caused them.
    """
    for result in results:
        if result.error is not None and not isinstance(result.error, CancelledJob):
            raise BatchJobError(result.name, result.error) from result.error


def _normalize(jobs: Sequence[Union[BatchJob, Callable[[], Any]]]) -> List[BatchJob]:
    return [
        job if isinstance(job, BatchJob) else BatchJob(getattr(job, "__name__", f"job{i}"), job)
        for i, job in enumerate(jobs)
    ]


def _run_serial(
    jobs: List[BatchJob],
    stop_on_error: bool,
    on_result: Optional[Callable[[BatchResult], None]] = None,
) -> List[BatchResult]:
    results: List[BatchResult] = []
    failed = False
    for job in jobs:
        if failed:
            results.append(BatchResult(job.name, error=CancelledJob(job.name)))
            continue
        outcome = _run_one(job)
        results.append(outcome)
        if on_result is not None:
            on_result(outcome)
        failed = stop_on_error and outcome.error is not None
    return results


def _drain_pool(
    pool,
    worker,
    jobs: List[BatchJob],
    stop_on_error: bool,
    on_result: Optional[Callable[[BatchResult], None]] = None,
) -> List[BatchResult]:
    """Submit all jobs, collect ordered results, cancel the rest on failure.

    Shared by the thread and process paths — ``worker`` is the (possibly
    pickled-and-shipped) per-job runner.  ``future.result()`` is guarded: a
    process-pool future raises here when the worker's *return value* failed
    to pickle (or the worker died), and that must surface as that job's
    error, not kill the whole batch.  ``on_result`` fires on the calling
    thread as each job completes (completion order, not submission order).
    """
    futures = {pool.submit(worker, job): index for index, job in enumerate(jobs)}
    slots: List[Optional[BatchResult]] = [None] * len(jobs)
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            index = futures[future]
            if future.cancelled():
                slots[index] = BatchResult(jobs[index].name, error=CancelledJob(jobs[index].name))
                continue
            try:
                outcome = future.result()
            except (KeyboardInterrupt, SystemExit):
                # same contract as the serial path: a Ctrl-C (or a job that
                # raised one in a pool thread) aborts the batch, it is never
                # recorded as the job's result
                raise
            except BaseException as exc:  # noqa: BLE001 - transport-level failure
                outcome = BatchResult(jobs[index].name, error=exc)
            slots[index] = outcome
            if on_result is not None:
                on_result(outcome)
            if stop_on_error and outcome.error is not None:
                for other in pending:
                    other.cancel()
    return [result for result in slots if result is not None]


# --------------------------------------------------------------------------- #
# process pool
# --------------------------------------------------------------------------- #
def _process_worker_init(cache_dir: Optional[str], obs_enabled: bool = False) -> None:
    """Per-process bootstrap: fresh session state, shared disk cache tier.

    When the parent runs with tracing enabled, ``obs_enabled`` turns the
    worker's own tracer on and zeroes its metrics registry, so every delta
    the worker ships back is exactly its own activity.
    """
    from repro.engine.cache import configure_shared_cache
    from repro.pvsim import state

    if cache_dir:
        configure_shared_cache(cache_dir)
    state.reset_session()
    if obs_enabled:
        METRICS.reset()
        enable_tracing()


def _run_one_in_worker(job: BatchJob) -> BatchResult:
    """Worker-side job runner: sanitize errors that cannot cross the pipe.

    With tracing on, the worker drains its span buffer and computes the
    metrics delta this job produced, attaching both (plain data) to
    :attr:`BatchResult.obs` so the parent can merge them.
    """
    tracer = TRACE_STATE.tracer
    metrics_before = METRICS.snapshot() if tracer is not None else None
    outcome = _run_one(job)
    if outcome.error is not None:
        try:
            pickle.dumps(outcome.error)
        except Exception:  # noqa: BLE001 - any pickling failure
            rendered = "".join(
                traceback.format_exception(
                    type(outcome.error), outcome.error, outcome.error.__traceback__
                )
            )
            outcome = BatchResult(
                outcome.name,
                error=WorkerJobError(
                    f"{type(outcome.error).__name__}: {outcome.error}\n{rendered}"
                ),
                duration=outcome.duration,
            )
    if tracer is not None and metrics_before is not None:
        delta = METRICS.snapshot().delta(metrics_before)
        outcome.obs = {
            "spans": [span.to_dict() for span in tracer.drain()],
            "metrics": delta.as_dict(),
        }
    return outcome


@dataclass
class ProcessBatchRunner:
    """Fan jobs out over worker *processes* sharing one disk cache tier.

    Parameters
    ----------
    max_workers:
        Number of worker processes.
    cache_dir:
        Root of the shared :class:`~repro.engine.cache.DiskCache`.  Every
        worker attaches it to its shared cache on startup, so upstream node
        results computed by one worker are reused by the others (and by
        later runs in the parent, if it attaches the same directory).
        ``None`` runs each worker with a purely in-memory cache.
    mp_context:
        ``multiprocessing`` start-method name.  The default ``"spawn"`` gives
        every worker a clean interpreter (no forked locks/threads), which is
        what makes per-process session bootstrap deterministic.
    """

    max_workers: int = 2
    cache_dir: Optional[Union[str, Path]] = None
    mp_context: str = "spawn"

    def run(
        self,
        jobs: Sequence[Union[BatchJob, Callable[[], Any]]],
        stop_on_error: bool = False,
        on_result: Optional[Callable[[BatchResult], None]] = None,
    ) -> List[BatchResult]:
        """Run jobs in worker processes; ordered results, errors captured.

        When the parent has tracing enabled, workers boot with their own
        tracer and ship per-job span buffers + metric deltas back on each
        :class:`BatchResult`; they are folded into the parent's tracer and
        registry here, before the caller's ``on_result`` fires.
        """
        import multiprocessing

        normalized = _normalize(jobs)
        parent_tracer = TRACE_STATE.tracer
        if parent_tracer is not None:
            caller_on_result = on_result

            def on_result(outcome: BatchResult) -> None:  # noqa: F811 - deliberate wrap
                payload = outcome.obs
                if payload:
                    parent_tracer.extend_serialized(payload.get("spans", ()))
                    metrics = payload.get("metrics")
                    if metrics:
                        METRICS.merge_snapshot(MetricsSnapshot.from_dict(metrics))
                if caller_on_result is not None:
                    caller_on_result(outcome)

        if self.max_workers <= 1 or len(normalized) <= 1:
            if self.cache_dir is None:
                return _run_serial(normalized, stop_on_error, on_result)
            # mirror the workers' bootstrap (results land in the disk tier),
            # but restore whatever tier the caller had — running a degenerate
            # batch must not permanently reconfigure the process
            from repro.engine.cache import DiskCache, shared_cache

            cache = shared_cache()
            previous_disk = cache.disk
            cache.attach_disk(DiskCache(self.cache_dir))
            try:
                return _run_serial(normalized, stop_on_error, on_result)
            finally:
                cache.attach_disk(previous_disk)

        context = multiprocessing.get_context(self.mp_context)
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        with ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=context,
            initializer=_process_worker_init,
            initargs=(cache_dir, parent_tracer is not None),
        ) as pool:
            return _drain_pool(pool, _run_one_in_worker, normalized, stop_on_error, on_result)


def run_batch(
    jobs: Sequence[Union[BatchJob, Callable[[], Any]]],
    max_workers: int = 1,
    stop_on_error: bool = False,
    executor: str = "thread",
    cache_dir: Optional[Union[str, Path]] = None,
    on_result: Optional[Callable[[BatchResult], None]] = None,
) -> List[BatchResult]:
    """Run jobs (callables or :class:`BatchJob`) and return ordered results.

    Exceptions are captured per job in :attr:`BatchResult.error`; a failing
    job never aborts its siblings — unless ``stop_on_error`` is set, in
    which case jobs that have not started yet are cancelled (their result
    carries a :class:`CancelledJob` error) so a doomed batch fails fast
    instead of finishing minutes of work that will be discarded.  Callers
    that want the failure *raised* should follow with
    :func:`raise_failures`, which names the failing job.
    ``KeyboardInterrupt``/``SystemExit`` are never captured: a Ctrl-C aborts
    the batch.

    ``executor`` selects the concurrency substrate: ``"thread"`` (default —
    shared in-memory cache, zero startup cost) or ``"process"`` (true CPU
    parallelism; see :class:`ProcessBatchRunner`).  ``cache_dir`` names the
    disk-cache root worker processes share; the thread path ignores it
    (threads already share the in-process cache).

    ``on_result`` is invoked on the calling thread as each job completes
    (completion order), letting callers persist incremental progress — the
    scenario suite streams its JSONL records through it, so an aborted
    batch keeps everything already finished.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r} (expected 'thread' or 'process')")
    if executor == "process":
        runner = ProcessBatchRunner(max_workers=max_workers, cache_dir=cache_dir)
        return runner.run(jobs, stop_on_error=stop_on_error, on_result=on_result)

    normalized = _normalize(jobs)
    if max_workers <= 1 or len(normalized) <= 1:
        return _run_serial(normalized, stop_on_error, on_result)
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return _drain_pool(pool, _run_one, normalized, stop_on_error, on_result)
