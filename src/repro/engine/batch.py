"""Concurrent execution of independent sessions/pipelines.

:func:`run_batch` fans a list of independent jobs out over a thread pool or,
with ``executor="process"``, over a pool of worker *processes*
(:class:`ProcessBatchRunner`).  It is the substrate under ``eval.harness``
parallelism: every cell of the Table II model×task matrix is an independent
(deterministic) session, so the matrix regenerates ``max_workers`` times
faster with bit-identical results.

Thread-safety of the thread path relies on the rest of the stack:

* ``pvsim.state`` keeps one session per thread (``threading.local``),
* ``pvsim.executor`` routes stdout/stderr per thread and never calls
  ``os.chdir``,
* the engine's shared result cache is lock-protected (and a win here —
  identical pipelines across jobs share executed results).

The process path trades those shared in-memory structures for real CPU
parallelism (no GIL contention between cells):

* job specs must be **picklable** — module-level functions with plain-data
  arguments (the harness cell functions qualify);
* every worker process bootstraps its own session world on startup and, when
  a ``cache_dir`` is given, attaches the shared *disk* cache tier
  (:func:`~repro.engine.cache.configure_shared_cache`), so workers reuse each
  other's upstream node results through the content-addressed files even
  though they share no memory;
* errors travel back as pickled exceptions; an exception that cannot be
  pickled is replaced by a :class:`WorkerJobError` carrying the job id, the
  original class name, and the rendered traceback.

Crash safety
------------

Both pool paths run through one :class:`_Dispatcher` state machine that adds
the fault-tolerance contract (see ``docs/robustness.md``):

* ``job_timeout`` bounds each attempt — worker processes arm a ``SIGALRM``
  timer around the job body (a hang surfaces as :class:`JobTimeoutError`
  and frees the slot); thread jobs get a parent-side deadline, because a
  thread cannot be interrupted;
* retryable failures (timeouts, :class:`~repro.faults.TransientFaultError`,
  retryable LLM errors) are re-attempted up to ``job_retries`` times with
  exponential backoff, each attempt under a fresh attempt number so any
  installed :class:`~repro.faults.FaultPlan` re-rolls its decisions;
* a ``BrokenProcessPool`` no longer aborts the batch: the pool is restarted,
  never-started jobs are re-enqueued unchanged, and the in-flight job that
  killed the worker is identified *exactly* when a fault plan is installed
  (the parent replays the worker's own seeded kill decision via
  ``predict_kill``) or heuristically otherwise.  A job that keeps killing
  workers is quarantined after ``poison_strikes`` strikes as a
  :class:`PoisonJobError` result instead of sinking the whole run.

``max_workers=1`` runs the jobs inline in the calling thread, preserving
exact serial semantics for either executor choice.
"""

from __future__ import annotations

import contextlib
import heapq
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults.errors import TransientFaultError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FAULT_STATE, job_scope
from repro.obs.metrics import METRICS, MetricsSnapshot
from repro.obs.trace import TRACE_STATE, enable_tracing

__all__ = [
    "BatchJob",
    "BatchJobError",
    "BatchResult",
    "CancelledJob",
    "JobTimeoutError",
    "PoisonJobError",
    "ProcessBatchRunner",
    "WorkerJobError",
    "raise_failures",
    "run_batch",
]

# retry backoff: 50ms, 100ms, 200ms, ... capped at 2s
_RETRY_BASE_DELAY = 0.05
_RETRY_BACKOFF = 2.0
_RETRY_MAX_DELAY = 2.0
# a thread job bounced off a saturated pool this many times is charged a timeout
_MAX_QUEUE_REQUEUES = 32


@dataclass
class BatchJob:
    """One independent unit of work.

    For the process executor, ``fn`` must be picklable — in practice a
    module-level function — and ``args``/``kwargs`` plain data.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BatchResult:
    """Outcome of one job (order-aligned with the submitted job list).

    ``obs`` carries a worker process's observability payload —
    ``{"spans": [span dicts], "metrics": snapshot dict}`` — back through the
    result channel when tracing is enabled; the parent merges it into its own
    tracer/registry and callers can ignore it.
    """

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    duration: float = 0.0
    obs: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# --------------------------------------------------------------------------- #
# the error vocabulary
# --------------------------------------------------------------------------- #
class CancelledJob(RuntimeError):
    """Marks a job that never ran because an earlier job failed (stop_on_error)."""


class JobTimeoutError(RuntimeError):
    """A job attempt exceeded its ``job_timeout`` budget.

    Retryable: a fresh attempt may run hang-free (and under an installed
    fault plan it *will* re-roll the hang decision).  Crosses the worker
    pipe, hence the explicit ``__reduce__``.
    """

    def __init__(self, job_name: str, timeout: float) -> None:
        super().__init__(f"job {job_name!r} exceeded its {timeout:g}s timeout")
        self.job_name = job_name
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.job_name, self.timeout))


class PoisonJobError(RuntimeError):
    """A job was quarantined for repeatedly killing worker processes.

    The batch continues without it; the poison job's slot carries this error
    so callers can tell "this cell is toxic" from "this cell failed".
    """

    def __init__(self, job_name: str, strikes: int) -> None:
        super().__init__(
            f"job {job_name!r} quarantined after killing {strikes} worker process(es)"
        )
        self.job_name = job_name
        self.strikes = strikes

    def __reduce__(self):
        return (type(self), (self.job_name, self.strikes))


class WorkerJobError(RuntimeError):
    """Stand-in for a worker-process exception that could not be pickled.

    Always names the job and the original exception class, so no sanitized
    path can lose them; the rendered traceback rides along when available.
    """

    def __init__(
        self, job_name: str, error_type: str, original_message: str, rendered: str = ""
    ) -> None:
        message = f"job {job_name!r} failed in worker with {error_type}: {original_message}"
        if rendered:
            message = f"{message}\n{rendered}"
        super().__init__(message)
        self.job_name = job_name
        self.error_type = error_type
        self.original_message = original_message
        self.rendered = rendered

    def __reduce__(self):
        return (type(self), (self.job_name, self.error_type, self.original_message, self.rendered))


class BatchJobError(RuntimeError):
    """A batch was aborted because one of its jobs failed.

    Mirrors the ``PipelineError`` convention of naming the failing proxy: the
    message leads with the *job name*, so a harness abort says exactly which
    (model, task) cell died, for thread and process runners alike.
    The original exception is chained as ``__cause__`` and kept on
    :attr:`cause`; the job's name is on :attr:`job_name`.
    """

    def __init__(self, job_name: str, cause: BaseException) -> None:
        super().__init__(f"batch job {job_name!r} failed: {type(cause).__name__}: {cause}")
        self.job_name = job_name
        self.cause = cause


def raise_failures(results: Sequence[BatchResult]) -> None:
    """Raise :class:`BatchJobError` for the first real failure, if any.

    Jobs cancelled by ``stop_on_error`` fast-fail (:class:`CancelledJob`) are
    not failures in their own right and never mask the job that caused them.
    """
    for result in results:
        if result.error is not None and not isinstance(result.error, CancelledJob):
            raise BatchJobError(result.name, result.error) from result.error


# --------------------------------------------------------------------------- #
# single-attempt execution
# --------------------------------------------------------------------------- #
def _invoke(job: BatchJob, tracer) -> Any:
    if tracer is None:
        return job.fn(*job.args, **job.kwargs)
    with tracer.span(job.name, "batch.job"):
        return job.fn(*job.args, **job.kwargs)


def _run_one(job: BatchJob, attempt: int = 0) -> BatchResult:
    tracer = TRACE_STATE.tracer  # the disabled paths pay only these two reads
    faults = FAULT_STATE.runtime
    started = time.perf_counter()
    try:
        if faults is None:
            value = _invoke(job, tracer)
        else:
            # publish (job, attempt) so nested engine/cache/LLM checkpoints
            # draw their fault decisions from this attempt's epoch
            with job_scope(job.name, attempt):
                faults.checkpoint("batch.job", job.name)
                value = _invoke(job, tracer)
        return BatchResult(job.name, value=value, duration=time.perf_counter() - started)
    except (KeyboardInterrupt, SystemExit):
        # a Ctrl-C must abort the batch, not be recorded as the job's result
        raise
    except BaseException as exc:  # noqa: BLE001 - jobs must not kill the batch
        return BatchResult(job.name, error=exc, duration=time.perf_counter() - started)


@contextlib.contextmanager
def _job_alarm(job_name: str, timeout: Optional[float]):
    """Arm a SIGALRM timer that raises :class:`JobTimeoutError` after ``timeout``.

    Only usable on the main thread of a POSIX process (signal handlers are a
    main-thread affair); everywhere else this is a no-op and the caller's
    parent-side deadline takes over.  The alarm interrupts even a
    ``time.sleep`` hang, which is exactly what the ``hang`` fault injects.

    An outer caller may have its own ``ITIMER_REAL`` armed (nested timed
    scopes, application watchdogs): on exit the remaining outer time —
    minus what this job consumed, floored at a minimal positive tick so a
    past-due alarm still fires — is restored along with the old handler.
    """
    can_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler signature
        raise JobTimeoutError(job_name, timeout)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_value, outer_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_value > 0.0:
            # the outer timer kept "running" while this job held ITIMER_REAL;
            # hand back what is left of it (a tiny positive tick if the outer
            # deadline already passed — setitimer(0) would cancel it outright).
            # Re-armed only after the outer handler is back, so a past-due
            # alarm lands on the outer handler rather than raising a spurious
            # JobTimeoutError out of this cleanup.
            remaining = max(outer_value - (time.monotonic() - started), 1e-6)
            signal.setitimer(signal.ITIMER_REAL, remaining, outer_interval)


def _run_one_timed(job: BatchJob, attempt: int = 0, timeout: Optional[float] = None) -> BatchResult:
    try:
        with _job_alarm(job.name, timeout):
            return _run_one(job, attempt)
    except JobTimeoutError as exc:
        # the alarm can fire in the sliver after the job body returns but
        # before it is disarmed; either way it is this job's timeout
        return BatchResult(job.name, error=exc)


def _is_retryable(error: BaseException) -> bool:
    """Failures a fresh attempt has a real chance of clearing."""
    if isinstance(error, (JobTimeoutError, TransientFaultError)):
        return True
    try:
        from repro.llm.errors import RetryableLLMError  # lazy: engine must not require llm
    except Exception:  # noqa: BLE001 - optional layer
        return False
    return isinstance(error, RetryableLLMError)


def _retry_delay(attempt: int) -> float:
    return min(_RETRY_MAX_DELAY, _RETRY_BASE_DELAY * _RETRY_BACKOFF**attempt)


def _normalize(jobs: Sequence[Union[BatchJob, Callable[[], Any]]]) -> List[BatchJob]:
    return [
        job if isinstance(job, BatchJob) else BatchJob(getattr(job, "__name__", f"job{i}"), job)
        for i, job in enumerate(jobs)
    ]


def _run_serial(
    jobs: List[BatchJob],
    stop_on_error: bool,
    on_result: Optional[Callable[[BatchResult], None]] = None,
    job_timeout: Optional[float] = None,
    job_retries: int = 0,
) -> List[BatchResult]:
    results: List[BatchResult] = []
    failed = False
    for job in jobs:
        if failed:
            results.append(BatchResult(job.name, error=CancelledJob(job.name)))
            continue
        attempt = 0
        while True:
            outcome = _run_one_timed(job, attempt, job_timeout)
            if isinstance(outcome.error, JobTimeoutError):
                METRICS.incr("recovery_total", action="timeout")
            if outcome.error is None or attempt >= job_retries or not _is_retryable(outcome.error):
                break
            METRICS.incr("recovery_total", action="retry")
            time.sleep(_retry_delay(attempt))
            attempt += 1
        results.append(outcome)
        if on_result is not None:
            on_result(outcome)
        failed = stop_on_error and outcome.error is not None
    return results


# --------------------------------------------------------------------------- #
# the dispatcher: ordered slots, retry backoff, stop_on_error — pool-agnostic
# --------------------------------------------------------------------------- #
class _PoolBroken(Exception):
    """Internal escape: the process pool died mid-generation.

    Carries the blame classification material — ``suspects`` were plausibly
    on a worker when it died (submission-order oldest first), ``lost`` were
    queued but never started and can be re-enqueued without suspicion.
    """

    def __init__(self, cause: BaseException, suspects: List[int], lost: List[int]) -> None:
        super().__init__(f"process pool broke: {type(cause).__name__}: {cause}")
        self.cause = cause
        self.suspects = suspects
        self.lost = lost


class _Dispatcher:
    """Order-preserving batch state shared by the pool drivers.

    Holds the per-job attempt and strike counters, the ready queue, the
    backoff heap of delayed retries, and the final result slots.  Pool
    drivers feed it attempt outcomes through :meth:`settle`; it decides
    retry-vs-finalize.  The state survives pool restarts, which is what
    lets :class:`ProcessBatchRunner` resume a half-finished generation
    after a ``BrokenProcessPool``.
    """

    def __init__(
        self,
        jobs: List[BatchJob],
        *,
        stop_on_error: bool = False,
        on_result: Optional[Callable[[BatchResult], None]] = None,
        on_attempt: Optional[Callable[[BatchResult], None]] = None,
        job_retries: int = 0,
    ) -> None:
        self.jobs = jobs
        self.slots: List[Optional[BatchResult]] = [None] * len(jobs)
        self.attempts = [0] * len(jobs)
        self.strikes = [0] * len(jobs)
        self.queue: "deque[int]" = deque(range(len(jobs)))
        self.delayed: List[Tuple[float, int]] = []  # (ready_at, index) heap
        self.stop_on_error = stop_on_error
        self.stopping = False
        self.stalls = 0
        self.on_result = on_result
        self.on_attempt = on_attempt
        self.job_retries = job_retries
        self.clock = time.monotonic

    @property
    def unfinished(self) -> bool:
        return any(slot is None for slot in self.slots)

    def promote_ready(self) -> None:
        now = self.clock()
        while self.delayed and self.delayed[0][0] <= now:
            _, index = heapq.heappop(self.delayed)
            self.queue.append(index)

    def next_wakeup(self) -> Optional[float]:
        """Seconds until the earliest delayed retry is ready (None if none)."""
        if not self.delayed:
            return None
        return max(0.0, self.delayed[0][0] - self.clock())

    def finalize(self, index: int, outcome: BatchResult) -> None:
        self.slots[index] = outcome
        if self.on_result is not None:
            self.on_result(outcome)
        if (
            self.stop_on_error
            and outcome.error is not None
            and not isinstance(outcome.error, CancelledJob)
        ):
            self.stopping = True

    def cancel_unstarted(self) -> None:
        """stop_on_error tripped: everything not yet submitted fast-fails."""
        while self.delayed:
            _, index = heapq.heappop(self.delayed)
            self.queue.append(index)
        while self.queue:
            index = self.queue.popleft()
            if self.slots[index] is None:
                name = self.jobs[index].name
                self.finalize(index, BatchResult(name, error=CancelledJob(name)))

    def finalize_remaining(self, cause: BaseException) -> None:
        """Stall bail-out: charge the break cause to every unfinished job."""
        while self.delayed:
            _, index = heapq.heappop(self.delayed)
            self.queue.append(index)
        while self.queue:
            index = self.queue.popleft()
            if self.slots[index] is None:
                self.finalize(index, BatchResult(self.jobs[index].name, error=cause))

    def settle(self, index: int, outcome: BatchResult) -> None:
        """Record one attempt's outcome: schedule a retry or finalize."""
        if self.on_attempt is not None:
            self.on_attempt(outcome)
        error = outcome.error
        if isinstance(error, JobTimeoutError):
            METRICS.incr("recovery_total", action="timeout")
        if (
            error is not None
            and not self.stopping
            and self.attempts[index] < self.job_retries
            and _is_retryable(error)
        ):
            METRICS.incr("recovery_total", action="retry")
            self.attempts[index] += 1
            delay = _retry_delay(self.attempts[index] - 1)
            heapq.heappush(self.delayed, (self.clock() + delay, index))
            return
        self.finalize(index, outcome)

    def results(self) -> List[BatchResult]:
        return [result for result in self.slots if result is not None]


def _drain_thread_pool(
    pool: ThreadPoolExecutor,
    dispatcher: _Dispatcher,
    job_timeout: Optional[float],
) -> None:
    """Thread-pool driver: parent-side deadlines (threads cannot be signalled).

    A future past its deadline is cancelled: success means it never left the
    queue (pool saturation, not execution time — requeue free of charge, up
    to a sanity cap); failure means the thread is genuinely stuck, so the
    job is charged a :class:`JobTimeoutError` and the stale future dropped
    (the thread finishes on its own time; its result is ignored).
    """
    jobs = dispatcher.jobs
    active: Dict[Any, Tuple[int, float]] = {}  # future -> (index, submitted_at)
    requeues = [0] * len(jobs)
    while dispatcher.queue or dispatcher.delayed or active:
        dispatcher.promote_ready()
        if dispatcher.stopping:
            dispatcher.cancel_unstarted()
            for future in list(active):
                if future.cancel():
                    index, _ = active.pop(future)
                    name = jobs[index].name
                    dispatcher.finalize(index, BatchResult(name, error=CancelledJob(name)))
        while dispatcher.queue:
            index = dispatcher.queue.popleft()
            if dispatcher.slots[index] is not None:
                continue
            future = pool.submit(_run_one, jobs[index], dispatcher.attempts[index])
            active[future] = (index, dispatcher.clock())
        if not active:
            wakeup = dispatcher.next_wakeup()
            if wakeup is None:
                break
            time.sleep(wakeup)
            continue
        timeout = dispatcher.next_wakeup()
        if job_timeout is not None:
            deadline_in = (
                min(at for _, at in active.values()) + job_timeout - dispatcher.clock()
            )
            timeout = deadline_in if timeout is None else min(timeout, deadline_in)
            timeout = max(timeout, 0.0)
        done, _ = wait(set(active), timeout=timeout, return_when=FIRST_COMPLETED)
        for future in done:
            index, _ = active.pop(future)
            if future.cancelled():
                name = jobs[index].name
                dispatcher.finalize(index, BatchResult(name, error=CancelledJob(name)))
                continue
            try:
                outcome = future.result()
            except (KeyboardInterrupt, SystemExit):
                # same contract as the serial path: a Ctrl-C (or a job that
                # raised one in a pool thread) aborts the batch, it is never
                # recorded as the job's result
                raise
            except BaseException as exc:  # noqa: BLE001 - transport-level failure
                outcome = BatchResult(jobs[index].name, error=exc)
            dispatcher.settle(index, outcome)
        if job_timeout is None:
            continue
        now = dispatcher.clock()
        for future, (index, submitted_at) in list(active.items()):
            if now - submitted_at < job_timeout:
                continue
            del active[future]
            if future.cancel() and requeues[index] < _MAX_QUEUE_REQUEUES:
                # never started: queue latency is not execution time
                requeues[index] += 1
                METRICS.incr("recovery_total", action="requeue")
                dispatcher.queue.append(index)
                continue
            name = jobs[index].name
            dispatcher.settle(index, BatchResult(name, error=JobTimeoutError(name, job_timeout)))


# --------------------------------------------------------------------------- #
# process pool
# --------------------------------------------------------------------------- #
def _process_worker_init(
    cache_dir: Optional[str],
    obs_enabled: bool = False,
    fault_plan: Optional[Dict[str, Any]] = None,
) -> None:
    """Per-process bootstrap: fresh session state, shared disk cache tier.

    When the parent runs with tracing enabled, ``obs_enabled`` turns the
    worker's own tracer on and zeroes its metrics registry, so every delta
    the worker ships back is exactly its own activity.  ``fault_plan`` ships
    the parent's installed :class:`~repro.faults.FaultPlan` (as a plain
    dict) so workers draw the *same* seeded fault decisions — installed
    ``in_worker=True``, which is what arms the ``worker-kill`` fault.
    """
    from repro.engine.cache import configure_shared_cache
    from repro.pvsim import state

    if cache_dir:
        configure_shared_cache(cache_dir)
    state.reset_session()
    if obs_enabled:
        METRICS.reset()
        enable_tracing()
    if fault_plan is not None:
        from repro.faults.runtime import enable_faults

        enable_faults(FaultPlan.from_dict(fault_plan), in_worker=True)


def _run_one_in_worker(
    job: BatchJob, attempt: int = 0, job_timeout: Optional[float] = None
) -> BatchResult:
    """Worker-side job runner: sanitize errors that cannot cross the pipe.

    With tracing on, the worker drains its span buffer and computes the
    metrics delta this job produced, attaching both (plain data) to
    :attr:`BatchResult.obs` so the parent can merge them.  The worker-kill
    fault site fires here, before any work — exactly once per job attempt,
    which is what lets the parent replay the decision to assign blame.
    """
    runtime = FAULT_STATE.runtime
    if runtime is not None:
        with job_scope(job.name, attempt):
            runtime.checkpoint("batch.worker", job.name)
    tracer = TRACE_STATE.tracer
    metrics_before = METRICS.snapshot() if tracer is not None else None
    outcome = _run_one_timed(job, attempt, job_timeout)
    if outcome.error is not None:
        try:
            pickle.dumps(outcome.error)
        except Exception:  # noqa: BLE001 - any pickling failure
            rendered = "".join(
                traceback.format_exception(
                    type(outcome.error), outcome.error, outcome.error.__traceback__
                )
            )
            outcome = BatchResult(
                outcome.name,
                error=WorkerJobError(
                    job.name, type(outcome.error).__name__, str(outcome.error), rendered
                ),
                duration=outcome.duration,
            )
    if tracer is not None and metrics_before is not None:
        delta = METRICS.snapshot().delta(metrics_before)
        outcome.obs = {
            "spans": [span.to_dict() for span in tracer.drain()],
            "metrics": delta.as_dict(),
        }
    return outcome


def _classify_break(
    dispatcher: _Dispatcher,
    cause: BaseException,
    active: Dict[Any, int],
    max_workers: int,
) -> None:
    """Split in-flight work from never-started work after a pool break.

    A broken executor marks *every* pending future broken, started or not.
    Completed results that raced the break are settled normally (finished
    work is never discarded); cancellable futures were still queued and are
    ``lost`` (requeue, no suspicion).  Of the remaining broken futures, only
    the oldest ``max_workers`` — submission order approximates start order —
    could actually have been on a worker when it died; they become the
    ``suspects``, the rest are ``lost`` too.  Always raises
    :class:`_PoolBroken`.
    """
    broken: List[int] = []
    lost: List[int] = []
    if active:
        wait(set(active), timeout=1.0)  # let racing stragglers settle
        for future, index in list(active.items()):  # insertion = submission order
            if future.cancel() or future.cancelled():
                lost.append(index)
                continue
            if not future.done():
                broken.append(index)  # uncancellable and unfinished: in flight
                continue
            try:
                outcome = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenExecutor:
                broken.append(index)
                continue
            except BaseException as exc:  # noqa: BLE001 - transport-level failure
                outcome = BatchResult(dispatcher.jobs[index].name, error=exc)
            dispatcher.settle(index, outcome)
        active.clear()
    raise _PoolBroken(cause, broken[:max_workers], lost + broken[max_workers:])


def _drain_process_pool(
    pool: ProcessPoolExecutor,
    dispatcher: _Dispatcher,
    job_timeout: Optional[float],
    max_workers: int,
) -> None:
    """Process-pool driver for one pool generation.

    Timeouts are enforced worker-side (SIGALRM around the job body), so the
    parent only schedules, settles, and watches for the pool breaking —
    which surfaces as :class:`_PoolBroken` for the runner's restart loop.
    """
    jobs = dispatcher.jobs
    active: Dict[Any, int] = {}  # future -> index, in submission order
    while dispatcher.queue or dispatcher.delayed or active:
        dispatcher.promote_ready()
        if dispatcher.stopping:
            dispatcher.cancel_unstarted()
            for future in list(active):
                if future.cancel():
                    index = active.pop(future)
                    name = jobs[index].name
                    dispatcher.finalize(index, BatchResult(name, error=CancelledJob(name)))
        while dispatcher.queue:
            index = dispatcher.queue.popleft()
            if dispatcher.slots[index] is not None:
                continue
            try:
                future = pool.submit(
                    _run_one_in_worker, jobs[index], dispatcher.attempts[index], job_timeout
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - broken/shut-down pool
                dispatcher.queue.appendleft(index)
                _classify_break(dispatcher, exc, active, max_workers)
            active[future] = index
        if not active:
            wakeup = dispatcher.next_wakeup()
            if wakeup is None:
                break
            time.sleep(wakeup)
            continue
        done, _ = wait(set(active), timeout=dispatcher.next_wakeup(), return_when=FIRST_COMPLETED)
        for future in done:
            index = active[future]
            if future.cancelled():
                del active[future]
                name = jobs[index].name
                dispatcher.finalize(index, BatchResult(name, error=CancelledJob(name)))
                continue
            try:
                outcome = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenExecutor as exc:
                # keep this future in ``active`` so classification sees it in
                # its original submission position
                _classify_break(dispatcher, exc, active, max_workers)
            except BaseException as exc:  # noqa: BLE001 - transport-level failure
                outcome = BatchResult(jobs[index].name, error=exc)
            del active[future]
            dispatcher.settle(index, outcome)


@dataclass
class ProcessBatchRunner:
    """Fan jobs out over worker *processes* sharing one disk cache tier.

    Parameters
    ----------
    max_workers:
        Number of worker processes.
    cache_dir:
        Root of the shared :class:`~repro.engine.cache.DiskCache`.  Every
        worker attaches it to its shared cache on startup, so upstream node
        results computed by one worker are reused by the others (and by
        later runs in the parent, if it attaches the same directory).
        ``None`` runs each worker with a purely in-memory cache.
    mp_context:
        ``multiprocessing`` start-method name.  The default ``"spawn"`` gives
        every worker a clean interpreter (no forked locks/threads), which is
        what makes per-process session bootstrap deterministic.
    job_timeout:
        Per-attempt wall-clock budget in seconds, enforced worker-side via
        ``SIGALRM`` (a hang becomes a retryable :class:`JobTimeoutError`).
        ``None`` disables it.
    job_retries:
        Bounded per-job retry budget for retryable failures (timeouts,
        transient faults, retryable LLM errors), with exponential backoff.
    poison_strikes:
        How many worker kills a single job may cause before it is
        quarantined as a :class:`PoisonJobError` result.
    """

    max_workers: int = 2
    cache_dir: Optional[Union[str, Path]] = None
    mp_context: str = "spawn"
    job_timeout: Optional[float] = None
    job_retries: int = 0
    poison_strikes: int = 3

    def run(
        self,
        jobs: Sequence[Union[BatchJob, Callable[[], Any]]],
        stop_on_error: bool = False,
        on_result: Optional[Callable[[BatchResult], None]] = None,
    ) -> List[BatchResult]:
        """Run jobs in worker processes; ordered results, errors captured.

        When the parent has tracing enabled, workers boot with their own
        tracer and ship per-attempt span buffers + metric deltas back on
        each :class:`BatchResult`; they are folded into the parent's tracer
        and registry for *every* attempt (a failed-then-retried attempt's
        telemetry is real work and is kept), before the caller's
        ``on_result`` fires on the final outcome.

        A ``BrokenProcessPool`` is survived: the pool restarts, in-flight
        jobs are re-enqueued, and a job that keeps killing workers is
        quarantined — see the module docstring for the exact blame rules.
        """
        import multiprocessing

        normalized = _normalize(jobs)
        parent_tracer = TRACE_STATE.tracer
        on_attempt: Optional[Callable[[BatchResult], None]] = None
        if parent_tracer is not None:

            def on_attempt(outcome: BatchResult) -> None:
                payload = outcome.obs
                if payload:
                    parent_tracer.extend_serialized(payload.get("spans", ()))
                    metrics = payload.get("metrics")
                    if metrics:
                        METRICS.merge_snapshot(MetricsSnapshot.from_dict(metrics))

        if self.max_workers <= 1 or len(normalized) <= 1:
            # degenerate path runs in-process: obs is already local, no
            # worker payloads to merge — the caller's on_result is enough
            if self.cache_dir is None:
                return _run_serial(
                    normalized, stop_on_error, on_result, self.job_timeout, self.job_retries
                )
            # mirror the workers' bootstrap (results land in the disk tier),
            # but restore whatever tier the caller had — running a degenerate
            # batch must not permanently reconfigure the process
            from repro.engine.cache import DiskCache, shared_cache

            cache = shared_cache()
            previous_disk = cache.disk
            cache.attach_disk(DiskCache(self.cache_dir))
            try:
                return _run_serial(
                    normalized, stop_on_error, on_result, self.job_timeout, self.job_retries
                )
            finally:
                cache.attach_disk(previous_disk)

        context = multiprocessing.get_context(self.mp_context)
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        runtime = FAULT_STATE.runtime
        plan_payload = runtime.plan.to_dict() if runtime is not None else None
        dispatcher = _Dispatcher(
            normalized,
            stop_on_error=stop_on_error,
            on_result=on_result,
            on_attempt=on_attempt,
            job_retries=self.job_retries,
        )
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while dispatcher.unfinished:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=context,
                        initializer=_process_worker_init,
                        initargs=(cache_dir, parent_tracer is not None, plan_payload),
                    )
                try:
                    _drain_process_pool(pool, dispatcher, self.job_timeout, self.max_workers)
                except _PoolBroken as broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    self._absorb_break(dispatcher, broken)
                else:
                    break  # clean generation: everything settled
            if pool is not None:
                pool.shutdown(wait=True)
                pool = None
        except (KeyboardInterrupt, SystemExit):
            self._interrupt_cleanup()
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return dispatcher.results()

    # ------------------------------------------------------------------ #
    def _absorb_break(self, dispatcher: _Dispatcher, broken: _PoolBroken) -> None:
        """Assign blame for a dead worker, quarantine repeat offenders.

        With a fault plan installed the parent *replays* each suspect's own
        seeded worker-kill decision (``predict_kill``) and blames exactly
        the jobs that killed themselves — co-scheduled innocents are
        re-enqueued at the same attempt, unchanged.  Without a plan (a real
        crash) every in-flight suspect takes a strike.  Blamed jobs re-run
        under a bumped attempt number (a fresh fault draw); three strikes
        and the job is quarantined as a :class:`PoisonJobError`.
        """
        METRICS.incr("recovery_total", action="pool-restart")
        runtime = FAULT_STATE.runtime
        blamed: List[int] = []
        if runtime is not None and broken.suspects:
            blamed = [
                index
                for index in broken.suspects
                if runtime.predict_kill(
                    "batch.worker", dispatcher.jobs[index].name, dispatcher.attempts[index]
                )
            ]
        if not blamed:
            blamed = list(broken.suspects)
        for index in broken.suspects:
            if index in blamed:
                dispatcher.strikes[index] += 1
                if dispatcher.strikes[index] >= self.poison_strikes:
                    METRICS.incr("recovery_total", action="quarantine")
                    name = dispatcher.jobs[index].name
                    dispatcher.finalize(
                        index,
                        BatchResult(
                            name, error=PoisonJobError(name, dispatcher.strikes[index])
                        ),
                    )
                else:
                    dispatcher.attempts[index] += 1
                    dispatcher.queue.append(index)
            else:
                METRICS.incr("recovery_total", action="requeue")
                dispatcher.queue.append(index)
        for index in broken.lost:
            dispatcher.queue.append(index)
        if broken.suspects or broken.lost:
            dispatcher.stalls = 0
        else:
            # the pool died with nothing identifiable in flight (e.g. its
            # initializer keeps failing); bounded patience, then bail out
            dispatcher.stalls += 1
            if dispatcher.stalls >= 3:
                dispatcher.finalize_remaining(broken.cause)

    def _interrupt_cleanup(self) -> None:
        """Ctrl-C / SystemExit mid-batch must not leave cache litter behind.

        Workers killed mid-write leave ``.*.tmp`` staging files next to the
        shared cache entries; sweep them so an interrupted run leaves the
        cache directory exactly as a clean run would (the ``.lock`` file
        stays — it is persistent by design — but no process holds its
        flock once the pool is gone).
        """
        if self.cache_dir is None:
            return
        from repro.engine.cache import DiskCache

        with contextlib.suppress(Exception):
            DiskCache(self.cache_dir).sweep_stale_tmp()


def run_batch(
    jobs: Sequence[Union[BatchJob, Callable[[], Any]]],
    max_workers: int = 1,
    stop_on_error: bool = False,
    executor: str = "thread",
    cache_dir: Optional[Union[str, Path]] = None,
    on_result: Optional[Callable[[BatchResult], None]] = None,
    job_timeout: Optional[float] = None,
    job_retries: int = 0,
) -> List[BatchResult]:
    """Run jobs (callables or :class:`BatchJob`) and return ordered results.

    Exceptions are captured per job in :attr:`BatchResult.error`; a failing
    job never aborts its siblings — unless ``stop_on_error`` is set, in
    which case jobs that have not started yet are cancelled (their result
    carries a :class:`CancelledJob` error) so a doomed batch fails fast
    instead of finishing minutes of work that will be discarded.  Callers
    that want the failure *raised* should follow with
    :func:`raise_failures`, which names the failing job.
    ``KeyboardInterrupt``/``SystemExit`` are never captured: a Ctrl-C aborts
    the batch.

    ``executor`` selects the concurrency substrate: ``"thread"`` (default —
    shared in-memory cache, zero startup cost) or ``"process"`` (true CPU
    parallelism; see :class:`ProcessBatchRunner`).  ``cache_dir`` names the
    disk-cache root worker processes share; the thread path ignores it
    (threads already share the in-process cache).

    ``job_timeout`` bounds each attempt in seconds and ``job_retries``
    grants retryable failures (timeouts, transient faults, retryable LLM
    errors) bounded re-attempts with exponential backoff — the crash-safety
    contract described in the module docstring and ``docs/robustness.md``.

    ``on_result`` is invoked on the calling thread as each job completes
    (completion order), letting callers persist incremental progress — the
    scenario suite streams its JSONL records through it, so an aborted
    batch keeps everything already finished.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r} (expected 'thread' or 'process')")
    if executor == "process":
        runner = ProcessBatchRunner(
            max_workers=max_workers,
            cache_dir=cache_dir,
            job_timeout=job_timeout,
            job_retries=job_retries,
        )
        return runner.run(jobs, stop_on_error=stop_on_error, on_result=on_result)

    normalized = _normalize(jobs)
    if max_workers <= 1 or len(normalized) <= 1:
        return _run_serial(normalized, stop_on_error, on_result, job_timeout, job_retries)
    dispatcher = _Dispatcher(
        normalized, stop_on_error=stop_on_error, on_result=on_result, job_retries=job_retries
    )
    pool = ThreadPoolExecutor(max_workers=max_workers)
    try:
        _drain_thread_pool(pool, dispatcher, job_timeout)
    finally:
        # never a ``with`` block: a hung job thread would block the exit of
        # the context manager; cancel what never started and let stragglers
        # finish on their own time
        pool.shutdown(wait=False, cancel_futures=True)
    return dispatcher.results()
