"""Concurrent execution of independent sessions/pipelines.

:func:`run_batch` fans a list of independent jobs out over a thread pool.
It is the substrate under ``eval.harness`` parallelism: every cell of the
Table II model×task matrix is an independent (deterministic) session, so the
matrix regenerates ``max_workers`` times faster with bit-identical results.

Thread-safety relies on the rest of the stack:

* ``pvsim.state`` keeps one session per thread (``threading.local``),
* ``pvsim.executor`` routes stdout/stderr per thread and never calls
  ``os.chdir``,
* the engine's shared result cache is lock-protected (and a win here —
  identical pipelines across jobs share executed results).

``max_workers=1`` runs the jobs inline in the calling thread, preserving
exact serial semantics.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["BatchJob", "BatchResult", "CancelledJob", "run_batch"]


@dataclass
class BatchJob:
    """One independent unit of work."""

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BatchResult:
    """Outcome of one job (order-aligned with the submitted job list)."""

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_one(job: BatchJob) -> BatchResult:
    started = time.perf_counter()
    try:
        value = job.fn(*job.args, **job.kwargs)
        return BatchResult(job.name, value=value, duration=time.perf_counter() - started)
    except BaseException as exc:  # noqa: BLE001 - jobs must not kill the batch
        return BatchResult(job.name, error=exc, duration=time.perf_counter() - started)


class CancelledJob(RuntimeError):
    """Marks a job that never ran because an earlier job failed (stop_on_error)."""


def run_batch(
    jobs: Sequence[Union[BatchJob, Callable[[], Any]]],
    max_workers: int = 1,
    stop_on_error: bool = False,
) -> List[BatchResult]:
    """Run jobs (callables or :class:`BatchJob`) and return ordered results.

    Exceptions are captured per job in :attr:`BatchResult.error`; a failing
    job never aborts its siblings — unless ``stop_on_error`` is set, in
    which case jobs that have not started yet are cancelled (their result
    carries a :class:`CancelledJob` error) so a doomed batch fails fast
    instead of finishing minutes of work that will be discarded.
    """
    normalized: List[BatchJob] = [
        job if isinstance(job, BatchJob) else BatchJob(getattr(job, "__name__", f"job{i}"), job)
        for i, job in enumerate(jobs)
    ]
    if max_workers <= 1 or len(normalized) <= 1:
        results: List[BatchResult] = []
        failed = False
        for job in normalized:
            if failed:
                results.append(BatchResult(job.name, error=CancelledJob(job.name)))
                continue
            outcome = _run_one(job)
            results.append(outcome)
            failed = stop_on_error and outcome.error is not None
        return results

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(_run_one, job): index for index, job in enumerate(normalized)}
        slots: List[Optional[BatchResult]] = [None] * len(normalized)
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                if future.cancelled():
                    slots[index] = BatchResult(
                        normalized[index].name, error=CancelledJob(normalized[index].name)
                    )
                    continue
                outcome = future.result()  # _run_one never raises
                slots[index] = outcome
                if stop_on_error and outcome.error is not None:
                    for other in pending:
                        other.cancel()
        return [result for result in slots if result is not None]
