"""Fluent, programmatic pipeline construction — no ``paraview.simple`` needed.

::

    from repro.engine import Pipeline

    p = Pipeline()
    volume = p.source("Wavelet", WholeExtent=[-5, 5, -5, 5, -5, 5])
    surface = volume.then("Contour", ContourBy=["POINTS", "RTData"], Isosurfaces=[130.0])
    dataset = surface.evaluate()

Each :meth:`NodeHandle.then` call adds a node of the named registered spec
and a dataflow edge; :meth:`NodeHandle.evaluate` runs the demand-driven
engine up to that node (cached, so repeated evaluation after small edits
only re-executes the changed suffix).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.engine.core import Engine, default_engine
from repro.engine.graph import Node, PipelineGraph
from repro.engine.registry import DATASET_SPEC, get_spec

__all__ = ["Pipeline", "NodeHandle"]


def _check_properties(spec, properties: Dict[str, Any]) -> None:
    """Validate and canonicalize property assignments in place.

    Rejects names the spec doesn't declare (catches typos early), and turns
    a string assigned to a property group — ``SeedType="Line"``, the group
    *kind* selection — into the pseudo-property the execute functions and
    the cache key read (mirroring what the pvsim proxies do), validated
    against the spec's allowed kinds.
    """
    allowed = set(spec.properties) | set(spec.groups)
    unknown = [
        name for name in properties if name not in allowed and not name.startswith("_")
    ]
    if unknown:
        raise AttributeError(
            f"{spec.label} has no propert{'y' if len(unknown) == 1 else 'ies'} "
            f"{', '.join(repr(n) for n in unknown)}; declared: {sorted(allowed)}"
        )
    for group_name in spec.groups:
        value = properties.get(group_name)
        if isinstance(value, str):
            kinds = spec.group_kinds.get(group_name)
            if kinds is not None and value.lower() not in kinds:
                raise ValueError(
                    f"{spec.label}: unknown {group_name} kind {value!r} "
                    f"(allowed: {sorted(kinds)})"
                )
            del properties[group_name]
            properties[f"_{group_name}Kind"] = value
        elif value is not None and not isinstance(value, dict):
            raise TypeError(
                f"{spec.label}.{group_name} takes a dict of group values or a "
                f"kind string, got {type(value).__name__}"
            )


class NodeHandle:
    """A fluent handle on one node of a :class:`Pipeline`."""

    def __init__(self, pipeline: "Pipeline", node: Node) -> None:
        self.pipeline = pipeline
        self.node = node

    def then(self, spec_name: str, name: Optional[str] = None, **properties: Any) -> "NodeHandle":
        """Append a filter fed by this node and return its handle."""
        handle = self.pipeline._add(spec_name, name, properties, inputs=[self.node.id])
        return handle

    def set(self, **properties: Any) -> "NodeHandle":
        """Update this node's properties (invalidates its downstream results)."""
        _check_properties(get_spec(self.node.spec_name), properties)
        self.node.properties.update(properties)
        return self

    def evaluate(self) -> Any:
        """Execute the pipeline up to this node and return its dataset."""
        return self.pipeline.engine.evaluate(self.pipeline.graph, self.node.id)

    def __repr__(self) -> str:
        return f"<NodeHandle {self.node.name} ({self.node.spec_name})>"


class Pipeline:
    """A pipeline under construction plus the engine that runs it."""

    def __init__(self, engine: Optional[Engine] = None) -> None:
        self.graph = PipelineGraph()
        self.engine = engine if engine is not None else default_engine()
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def source(self, spec_name: str, name: Optional[str] = None, **properties: Any) -> NodeHandle:
        """Add a source node (readers, procedural sources)."""
        return self._add(spec_name, name, properties, inputs=[])

    def dataset(self, dataset: Any, name: Optional[str] = None) -> NodeHandle:
        """Wrap an in-memory dataset as a pipeline source.

        The dataset is treated as immutable: results are cached against its
        content fingerprint, which is memoized.  If you mutate its array
        values in place afterwards, call ``dataset.invalidate_fingerprint()``
        (or pass a copy) — otherwise downstream results keyed on the old
        content will be reused.
        """
        return self._add(DATASET_SPEC, name or "dataset", {"dataset": dataset}, inputs=[])

    def _add(self, spec_name: str, name: Optional[str], properties: Dict[str, Any], inputs) -> NodeHandle:
        spec = get_spec(spec_name)  # validates the name early
        _check_properties(spec, properties)
        if name is None:
            self._counts[spec_name] = self._counts.get(spec_name, 0) + 1
            name = f"{spec.label}{self._counts[spec_name]}"
        node = self.graph.add_node(spec_name, properties, name=name, inputs=inputs)
        return NodeHandle(self, node)

    def __repr__(self) -> str:
        return f"<Pipeline nodes={len(self.graph)}>"
