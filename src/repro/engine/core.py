"""The demand-driven execution engine.

:class:`Engine.evaluate` walks a :class:`~repro.engine.graph.PipelineGraph`
in topological order up to the requested node, consults the content-addressed
:class:`~repro.engine.cache.ResultCache` per node, and executes only the
nodes whose key (spec + normalized properties + upstream keys) has never been
seen.  Re-running a pipeline after changing one property therefore
re-executes exactly the invalidated downstream subgraph — the property the
ChatVis generate→execute→correct loop leans on, since successive iterations
of a corrected script share almost their entire pipeline.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.engine.cache import CacheLike, CacheStats, node_key, shared_cache
from repro.engine.errors import NodeExecutionError
from repro.engine.graph import Node, PipelineGraph
from repro.engine.registry import ExecContext, get_spec
from repro.faults.runtime import FAULT_STATE
from repro.obs.trace import TRACE_STATE

__all__ = ["EvaluationReport", "Engine", "default_engine"]

#: properties that express dataflow, not configuration; excluded from keys
_STRUCTURAL_PROPERTIES = ("Input",)


class EvaluationReport:
    """What one :meth:`Engine.evaluate` call actually did."""

    def __init__(self) -> None:
        self.executed: List[str] = []  #: node names that ran their spec
        self.cached: List[str] = []  #: node names served from the cache
        self.duration: float = 0.0

    @property
    def n_executed(self) -> int:
        return len(self.executed)

    @property
    def n_cached(self) -> int:
        return len(self.cached)

    @property
    def hit_ratio(self) -> float:
        """Fraction of consulted nodes served from cache (1.0 = fully warm)."""
        consulted = self.n_executed + self.n_cached
        return self.n_cached / consulted if consulted else 0.0

    def __repr__(self) -> str:
        return (
            f"EvaluationReport(executed={self.executed}, cached={self.cached}, "
            f"duration={self.duration:.4f}s)"
        )


class Engine:
    """Demand-driven, cache-aware executor of pipeline graphs.

    Parameters
    ----------
    cache:
        Any :class:`~repro.engine.cache.CacheLike` — a plain in-memory
        :class:`~repro.engine.cache.ResultCache`, a persistent
        :class:`~repro.engine.cache.DiskCache`, or the composed
        :class:`~repro.engine.cache.TieredCache`.  Defaults to the
        process-wide shared tiered cache so independent engines (and
        sessions) de-duplicate work, and so a disk tier attached via
        ``configure_shared_cache()`` benefits every engine at once.
    error_class:
        Exception class raised for execution failures.  The ``pvsim`` layer
        passes its :class:`~repro.pvsim.errors.PipelineError` so scripts see
        the error types real ParaView would produce.
    """

    def __init__(
        self,
        cache: Optional[CacheLike] = None,
        error_class: type = NodeExecutionError,
    ) -> None:
        self.cache = cache if cache is not None else shared_cache()
        self.error_class = error_class
        self._local = threading.local()

    @property
    def last_report(self) -> Optional[EvaluationReport]:
        """The calling thread's most recent evaluation report.

        Thread-local, so concurrent sessions sharing one engine each see
        their own report rather than whichever evaluate() finished last.
        """
        return getattr(self._local, "report", None)

    def thread_stats(self) -> CacheStats:
        """Cumulative node hit/miss counts for the calling thread's evaluations.

        Unlike ``cache.stats`` (process-global, polluted by concurrent
        sessions), this isolates one session's traffic — it is what the
        ChatVis loop records per iteration.
        """
        stats = getattr(self._local, "stats", None)
        if stats is None:
            stats = CacheStats()
            self._local.stats = stats
        return stats

    # ------------------------------------------------------------------ #
    def evaluate(self, graph: PipelineGraph, target: Optional[str] = None) -> Any:
        """Execute the graph up to ``target`` (default: sole sink) and return its output."""
        if target is None:
            sinks = self._sinks(graph)
            if len(sinks) != 1:
                raise self.error_class(
                    f"evaluate() needs an explicit target when the graph has {len(sinks)} sinks"
                )
            target = sinks[0]

        report = EvaluationReport()
        started = time.perf_counter()
        outputs: Dict[str, Any] = {}
        keys: Dict[str, str] = {}

        # keys derive from properties and upstream keys alone — no outputs
        # needed — so compute them for the whole ancestor chain up front
        # (this is also where cycles are detected)
        for node in graph.topological_order([target]):
            keys[node.id] = self._node_cache_key(node, keys)

        # captured once per evaluate(); the disabled fast paths cost exactly
        # these two attribute reads plus local-variable None tests per node
        tracer = TRACE_STATE.tracer
        faults = FAULT_STATE.runtime

        def materialize(node_id: str) -> Any:
            """Demand-driven fetch-or-execute: a cached node never touches
            its ancestors, so a warm target costs exactly one cache get."""
            if node_id in outputs:
                return outputs[node_id]
            node = graph.node(node_id)
            found, value = self.cache.get(keys[node_id])
            if found:
                report.cached.append(node.name)
                if tracer is not None:
                    # zero-length marker span: the hit is the event
                    with tracer.span(node.name, "engine.node", spec=node.spec_name, cached=True):
                        pass
            else:
                # inputs materialize outside the span so node spans carry
                # self-time (compute + put), not their ancestors' work
                inputs = [materialize(i) for i in node.inputs]
                if faults is not None:
                    faults.checkpoint("engine.node", node.name)
                if tracer is None:
                    value = self._execute_node(node, inputs)
                    self.cache.put(keys[node_id], value)
                else:
                    with tracer.span(node.name, "engine.node", spec=node.spec_name, cached=False):
                        value = self._execute_node(node, inputs)
                        self.cache.put(keys[node_id], value)
                report.executed.append(node.name)
            outputs[node_id] = value
            return value

        materialize(graph.node(target).id)
        report.duration = time.perf_counter() - started
        self._local.report = report
        thread_stats = self.thread_stats()
        thread_stats.hits += report.n_cached
        thread_stats.misses += report.n_executed
        return outputs[graph.node(target).id]

    # ------------------------------------------------------------------ #
    def _node_cache_key(self, node: Node, upstream_keys: Dict[str, str]) -> str:
        spec = get_spec(node.spec_name)
        # canonical form: every declared property at its effective value, so a
        # sparse node (fluent API) and a fully-populated one (pvsim proxies)
        # describing the same pipeline stage share a key
        properties: Dict[str, Any] = {}
        for name, default in spec.properties.items():
            properties[name] = node.properties.get(name, default)
        for name, group_defaults in spec.groups.items():
            merged = dict(group_defaults)
            value = node.properties.get(name)
            if hasattr(value, "as_dict"):
                value = value.as_dict()
            if isinstance(value, dict):
                merged.update(value)
            properties[name] = merged
        for name, value in node.properties.items():
            if name not in properties and name not in _STRUCTURAL_PROPERTIES:
                properties[name] = value
        token = None
        if spec.cache_token is not None:
            token = spec.cache_token(self._context(node, spec, ()))
        return node_key(
            spec.name,
            properties,
            [upstream_keys[i] for i in node.inputs],
            token=token,
        )

    def _context(self, node: Node, spec, inputs) -> ExecContext:
        return ExecContext(
            spec=spec,
            node_name=node.name,
            properties=node.properties,
            inputs=inputs,
            error_class=self.error_class,
        )

    def _execute_node(self, node: Node, inputs: List[Any]) -> Any:
        spec = get_spec(node.spec_name)
        ctx = self._context(node, spec, inputs)
        if not spec.is_source and not inputs:
            ctx.error("has no Input and no active source is set")
        started = time.perf_counter()
        try:
            return spec.execute(ctx)
        except NodeExecutionError as exc:
            if exc.elapsed is None:
                exc.elapsed = time.perf_counter() - started
            raise

    @staticmethod
    def _sinks(graph: PipelineGraph) -> List[str]:
        used = {upstream for node in graph.nodes() for upstream in node.inputs}
        return [node.id for node in graph.nodes() if node.id not in used]


_default_engine: Optional[Engine] = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide engine over the shared result cache."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine()
        return _default_engine
