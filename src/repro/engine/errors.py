"""Exception types for the pipeline engine."""

from __future__ import annotations

__all__ = ["EngineError", "GraphError", "GraphCycleError", "NodeExecutionError", "RegistryError"]


class EngineError(RuntimeError):
    """Base class for errors raised by the pipeline engine."""


class GraphError(EngineError):
    """Structural problem in a pipeline graph (unknown node, bad edge)."""


class GraphCycleError(GraphError):
    """The pipeline graph contains a cycle and cannot be executed."""


class NodeExecutionError(EngineError):
    """A node failed to execute.

    :class:`repro.pvsim.errors.PipelineError` derives from this class so that
    engine-level failures and ParaView-layer failures share one hierarchy.
    The engine stamps :attr:`elapsed` with the failing node's execution time
    (seconds) so failures are timed, not just named.
    """

    #: seconds the failing node ran before raising (set by the engine)
    elapsed: "float | None" = None


class RegistryError(EngineError):
    """A filter spec is missing, duplicated, or malformed."""
