"""``repro.engine`` — the demand-driven pipeline execution core.

This package is the execution substrate everything downstream sits on: the
``pvsim`` ParaView-compatible layer generates its proxy classes from the
engine's filter registry, the ChatVis executor re-runs corrected scripts
against the engine's content-addressed cache, and the evaluation harness
fans independent sessions out over the engine's batch runner.

The pieces:

* :mod:`~repro.engine.graph` — explicit pipeline graphs: nodes carry a
  registered spec name plus property values, edges carry dataflow, and
  execution order is topological with cycle detection
  (:class:`GraphCycleError` instead of the old implicit proxy-chasing).
* :mod:`~repro.engine.registry` — the declarative filter registry.
  ``@register_filter(name, properties=...)`` turns one execute function plus
  a property table into a spec; ``pvsim`` generates its strict proxy classes
  from these specs, and programmatic callers drive the same specs through
  the fluent API without any ``paraview.simple`` syntax.
* :mod:`~repro.engine.cache` — the content-addressed result cache.  Node
  keys chain ``(spec, normalized properties, upstream keys)``, so re-running
  a corrected ChatVis script re-executes only the filters whose parameters
  actually changed, and two identical pipelines share results.  Raw dataset
  inputs key on :meth:`Dataset.content_fingerprint`.
* :mod:`~repro.engine.core` — :class:`Engine`: demand-driven evaluation up
  to a target node, with a per-call :class:`EvaluationReport` saying which
  nodes executed and which came from cache.
* :mod:`~repro.engine.api` — the fluent builder::

      from repro.engine import Pipeline

      p = Pipeline()
      surface = (
          p.source("Wavelet", WholeExtent=[-5, 5, -5, 5, -5, 5])
           .then("Contour", ContourBy=["POINTS", "RTData"], Isosurfaces=[130.0])
      )
      dataset = surface.evaluate()

* :mod:`~repro.engine.batch` — :func:`run_batch`: concurrent execution of
  independent sessions (the Table II matrix parallelism).

See ``examples/engine_pipeline.py`` for a complete programmatic walkthrough.
"""

from repro.engine.api import NodeHandle, Pipeline
from repro.engine.batch import (
    BatchJob,
    BatchJobError,
    BatchResult,
    CancelledJob,
    JobTimeoutError,
    PoisonJobError,
    ProcessBatchRunner,
    WorkerJobError,
    raise_failures,
    run_batch,
)
from repro.engine.cache import (
    CacheLike,
    CacheStats,
    DiskCache,
    ResultCache,
    TieredCache,
    configure_shared_cache,
    node_key,
    normalize_value,
    shared_cache,
)
from repro.engine.core import Engine, EvaluationReport, default_engine
from repro.engine.errors import (
    EngineError,
    GraphCycleError,
    GraphError,
    NodeExecutionError,
    RegistryError,
)
from repro.engine.graph import Node, PipelineGraph
from repro.engine.registry import (
    DATASET_SPEC,
    ExecContext,
    FilterSpec,
    all_specs,
    get_spec,
    has_spec,
    register_filter,
    register_source,
    spec_names,
)

__all__ = [
    "BatchJob",
    "BatchJobError",
    "BatchResult",
    "CacheLike",
    "CacheStats",
    "CancelledJob",
    "DATASET_SPEC",
    "DiskCache",
    "Engine",
    "EngineError",
    "EvaluationReport",
    "ExecContext",
    "FilterSpec",
    "GraphCycleError",
    "GraphError",
    "JobTimeoutError",
    "Node",
    "NodeExecutionError",
    "NodeHandle",
    "Pipeline",
    "PipelineGraph",
    "PoisonJobError",
    "ProcessBatchRunner",
    "RegistryError",
    "ResultCache",
    "TieredCache",
    "WorkerJobError",
    "all_specs",
    "configure_shared_cache",
    "default_engine",
    "get_spec",
    "has_spec",
    "node_key",
    "normalize_value",
    "raise_failures",
    "register_filter",
    "register_source",
    "run_batch",
    "shared_cache",
    "spec_names",
]
