"""ChatVis reproduction package.

The package is organised bottom-up:

* :mod:`repro.datamodel` — VTK-like datasets (image data, poly data, grids).
* :mod:`repro.io` — legacy-VTK-style, Exodus-style, and PNG file I/O.
* :mod:`repro.algorithms` — visualization filters (contour, slice, clip,
  Delaunay, stream tracer, tube, glyph, ...).
* :mod:`repro.engine` — the demand-driven pipeline execution core: explicit
  graphs, a declarative filter registry, a content-addressed result cache,
  and a batch runner for concurrent sessions.
* :mod:`repro.rendering` — camera, color maps, software rasterizer and
  volume ray-caster.
* :mod:`repro.pvsim` — a ``paraview.simple``-compatible scripting layer plus
  a PvPython-like sandboxed executor.
* :mod:`repro.llm` — a deterministic simulated-LLM substrate with capability
  profiles for the models compared in the paper.
* :mod:`repro.core` — ChatVis itself: prompt generation, few-shot script
  generation, error extraction and the iterative correction loop.
* :mod:`repro.data` — synthetic dataset generators (Marschner–Lobb,
  can-points, disk flow).
* :mod:`repro.eval` — ground-truth scripts, image/script metrics, and the
  harness that regenerates the paper's tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
