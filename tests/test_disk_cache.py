"""Tests for the persistent disk cache tier and the tiered composition.

Covers the tentpole guarantees:

* round-trip of dataset values through the framed/checksummed payload format,
* LRU eviction order under the size bound (touching an entry protects it),
* recovery from corrupted/truncated/foreign cache files (counted, discarded,
  never fatal),
* concurrent writers through separate ``DiskCache`` instances sharing one
  root (coordination purely via the filesystem, as between processes),
* the headline incremental property: a second run of an unchanged pipeline
  against a warm disk cache executes **zero** filter nodes, including through
  the script executor (``ExecutionResult.nodes_executed``).
"""

import threading

import pytest

from repro.datamodel import CachePayloadError, dumps_payload, loads_payload
from repro.engine import (
    DiskCache,
    Engine,
    Pipeline,
    ResultCache,
    TieredCache,
    configure_shared_cache,
    shared_cache,
)
from repro.pvsim import state


@pytest.fixture(autouse=True)
def _fresh_session():
    state.reset_session()
    yield
    state.reset_session()
    configure_shared_cache(None)  # never leak a disk tier into other tests


SMALL_EXTENT = [-4, 4, -4, 4, -4, 4]


def build_chain(pipeline: Pipeline, isovalue: float = 120.0):
    src = pipeline.source("Wavelet", WholeExtent=list(SMALL_EXTENT))
    sliced = src.then("Slice", SliceType={"Origin": [0.0, 0.0, 0.0], "Normal": [1.0, 0.0, 0.0]})
    return sliced.then("Contour", ContourBy=["POINTS", "RTData"], Isosurfaces=[isovalue])


# --------------------------------------------------------------------------- #
# payload framing
# --------------------------------------------------------------------------- #
class TestPayloadFormat:
    def test_round_trip_dataset(self):
        from repro.data import generate_marschner_lobb

        dataset = generate_marschner_lobb(6)
        restored = loads_payload(dumps_payload(dataset))
        assert restored is not dataset
        assert restored.content_fingerprint() == dataset.content_fingerprint()

    def test_equal_content_serializes_identically(self):
        """Fingerprint memoization must not leak into the bytes."""
        from repro.data import generate_marschner_lobb

        a = generate_marschner_lobb(5)
        b = generate_marschner_lobb(5)
        a.content_fingerprint()  # memoize on one of them only
        assert dumps_payload(a) == dumps_payload(b)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data[: len(data) // 2],  # truncated
            lambda data: b"XXXX" + data[4:],  # wrong magic
            lambda data: data[:-8] + b"\x00" * 8,  # scribbled payload
            lambda data: b"",  # empty file
        ],
    )
    def test_corrupt_payloads_raise_one_error_type(self, mutate):
        data = dumps_payload({"x": 1})
        with pytest.raises(CachePayloadError):
            loads_payload(mutate(data))


# --------------------------------------------------------------------------- #
# disk tier
# --------------------------------------------------------------------------- #
class TestDiskCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = DiskCache(tmp_path)
        found, _ = cache.get("k1")
        assert not found
        cache.put("k1", {"table": [1, 2, 3]})
        found, value = cache.get("k1")
        assert found and value == {"table": [1, 2, 3]}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1 and cache.total_bytes() > 0

    def test_eviction_is_lru_and_touch_protects(self, tmp_path):
        payload = b"x" * 1000  # each entry ≈ 1 KiB + framing
        entry_size = len(dumps_payload(payload))
        cache = DiskCache(tmp_path, max_bytes=3 * entry_size)
        cache.put("aa1", payload)
        cache.put("bb2", payload)
        cache.put("cc3", payload)
        assert len(cache) == 3
        found, _ = cache.get("aa1")  # touch: aa1 becomes most-recent
        assert found
        cache.put("dd4", payload)  # overflows: oldest untouched entry goes
        assert "bb2" not in cache
        assert "aa1" in cache and "cc3" in cache and "dd4" in cache
        assert cache.stats.evictions == 1

    def test_eviction_order_is_strict_lru(self, tmp_path):
        payload = b"y" * 500
        entry_size = len(dumps_payload(payload))
        cache = DiskCache(tmp_path, max_bytes=2 * entry_size)
        for key in ("k1", "k2", "k3", "k4"):
            cache.put(key, payload)
        # capacity two: only the two most recent survive, evicted in put order
        assert "k1" not in cache and "k2" not in cache
        assert "k3" in cache and "k4" in cache
        assert cache.stats.evictions == 2

    def test_failed_unlink_is_not_counted_as_eviction(self, tmp_path, monkeypatch):
        """An entry whose shard directory is read-only cannot be unlinked; it
        is still on disk, so it must not count as evicted and the store must
        evict the *next* candidate to actually get back under budget."""
        from pathlib import Path

        payload = b"z" * 800
        entry_size = len(dumps_payload(payload))
        cache = DiskCache(tmp_path, max_bytes=2 * entry_size)
        cache.put("aa1", payload)
        cache.put("bb2", payload)

        shard = tmp_path / "aa"
        shard.chmod(0o500)  # read-only entry directory: unlink denied
        real_unlink = Path.unlink

        def _guarded(self, *args, **kwargs):
            # root bypasses directory permission bits; enforce the read-only
            # scenario explicitly so the test holds under any uid
            if self.parent == shard:
                raise PermissionError(13, "Permission denied", str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", _guarded)
        try:
            cache.put("cc3", payload)  # overflow: LRU wants to evict aa1 first
        finally:
            monkeypatch.undo()
            shard.chmod(0o700)

        assert "aa1" in cache  # the stuck entry never left the disk
        assert "bb2" not in cache  # the next-oldest was evicted instead
        assert cache.stats.evictions == 1  # only the entry actually removed
        assert cache.total_bytes() <= 2 * entry_size + entry_size // 2  # fits

    def test_corrupted_entry_is_discarded_not_fatal(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("victim", [1, 2, 3])
        (path,) = list(tmp_path.glob("*/victim.bin"))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])  # truncate

        found, _ = cache.get("victim")
        assert not found
        assert cache.stats.corruptions == 1
        assert not path.exists()  # bad file removed so the slot heals
        cache.put("victim", [4, 5, 6])  # and the key is writable again
        assert cache.get("victim") == (True, [4, 5, 6])

    def test_foreign_file_is_treated_as_corrupt(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", "value")
        (path,) = list(tmp_path.glob("*/k.bin"))
        path.write_bytes(b"not a cache payload at all")
        found, _ = cache.get("k")
        assert not found and cache.stats.corruptions == 1

    def test_unpicklable_value_is_skipped(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("bad", lambda: None)  # lambdas don't pickle
        assert "bad" not in cache
        assert len(cache) == 0

    def test_clear_empties_the_store(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(5):
            cache.put(f"key{i}", i)
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes() == 0

    def test_concurrent_writers_share_one_root(self, tmp_path):
        """Separate instances on one root coordinate purely via the files
        (the cross-process situation); every read sees a miss or an intact
        value — never an exception, never a torn entry."""
        keys = [f"key{i:02d}" for i in range(8)]
        payload = {key: list(range(200)) for key in keys}
        writers = [DiskCache(tmp_path, max_bytes=1 << 20) for _ in range(4)]
        errors = []

        def hammer(cache: DiskCache, seed: int):
            try:
                for round_no in range(15):
                    key = keys[(seed + round_no) % len(keys)]
                    cache.put(key, payload[key])
                    found, value = cache.get(keys[(seed * 3 + round_no) % len(keys)])
                    if found:
                        assert value == payload[keys[(seed * 3 + round_no) % len(keys)]]
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(cache, i)) for i, cache in enumerate(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        verifier = DiskCache(tmp_path)
        for key in keys:
            found, value = verifier.get(key)
            assert found and value == payload[key]
        assert verifier.stats.corruptions == 0

    def test_concurrent_writers_with_eviction_churn(self, tmp_path):
        """Eviction racing writers must never corrupt surviving entries."""
        payload = b"z" * 2000
        entry_size = len(dumps_payload(payload))
        writers = [DiskCache(tmp_path, max_bytes=3 * entry_size) for _ in range(3)]
        errors = []

        def churn(cache: DiskCache, seed: int):
            try:
                for i in range(20):
                    cache.put(f"churn-{seed}-{i}", payload)
                    cache.get(f"churn-{(seed + 1) % 3}-{i}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(c, i)) for i, c in enumerate(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        verifier = DiskCache(tmp_path)
        for path in tmp_path.glob("*/*.bin"):
            key = path.stem
            found, value = verifier.get(key)
            assert found and value == payload
        assert verifier.stats.corruptions == 0


# --------------------------------------------------------------------------- #
# tiered composition
# --------------------------------------------------------------------------- #
class TestTieredCache:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("k", [1, 2])
        tiered = TieredCache(ResultCache(), disk)
        found, first = tiered.get("k")
        assert found
        found, second = tiered.get("k")
        assert found and second is first  # second hit is the memory tier
        assert disk.stats.hits == 1

    def test_put_writes_through_both_tiers(self, tmp_path):
        disk = DiskCache(tmp_path)
        tiered = TieredCache(ResultCache(), disk)
        tiered.put("k", "v")
        assert "k" in tiered.memory and "k" in disk

    def test_effective_stats_count_disk_hits_once(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("k", 1)
        tiered = TieredCache(ResultCache(), disk)
        tiered.get("k")  # memory miss + disk hit = one effective hit
        tiered.get("missing")  # one effective miss
        assert tiered.stats.hits == 1
        assert tiered.stats.misses == 1

    def test_warm_disk_cache_executes_zero_nodes(self, tmp_path):
        """The acceptance property: an unchanged pipeline over a warm disk
        cache executes nothing, in a brand-new engine with empty memory."""
        cold_engine = Engine(cache=TieredCache(ResultCache(), DiskCache(tmp_path)))
        result_cold = build_chain(Pipeline(cold_engine)).evaluate()
        assert cold_engine.last_report.n_executed == 3

        warm_engine = Engine(cache=TieredCache(ResultCache(), DiskCache(tmp_path)))
        result_warm = build_chain(Pipeline(warm_engine)).evaluate()
        assert warm_engine.last_report.n_executed == 0
        assert warm_engine.last_report.hit_ratio == 1.0
        assert warm_engine.cache.stats.hits >= 1
        assert result_warm.content_fingerprint() == result_cold.content_fingerprint()

    def test_changed_property_invalidates_only_downstream(self, tmp_path):
        cold_engine = Engine(cache=TieredCache(ResultCache(), DiskCache(tmp_path)))
        build_chain(Pipeline(cold_engine), isovalue=110.0).evaluate()

        warm_engine = Engine(cache=TieredCache(ResultCache(), DiskCache(tmp_path)))
        build_chain(Pipeline(warm_engine), isovalue=115.0).evaluate()
        # only the contour differs; its upstream slice comes off the disk
        assert warm_engine.last_report.executed == ["Contour1"]
        assert warm_engine.last_report.cached == ["Slice1"]


# --------------------------------------------------------------------------- #
# shared-cache wiring
# --------------------------------------------------------------------------- #
class TestSharedCacheConfiguration:
    def test_configure_reaches_existing_engines(self, tmp_path):
        """Engines hold the facade, so attaching a disk tier later takes
        effect without rebuilding them (the pvsim module engine relies on
        this)."""
        engine = Engine()  # defaults to the shared facade
        assert engine.cache is shared_cache()
        configure_shared_cache(tmp_path)
        assert shared_cache().disk is not None
        assert engine.cache.disk is not None
        configure_shared_cache(None)
        assert engine.cache.disk is None

    def test_executor_counts_zero_executions_on_warm_disk(self, tmp_path):
        """A re-run script against a warm disk tier reports zero executed
        nodes through ExecutionResult — the end-to-end incremental signal."""
        from repro.core.tasks import prepare_task_data
        from repro.pvsim.executor import PvPythonExecutor

        configure_shared_cache(tmp_path / "cache")
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "contour = Contour(Input=reader, ContourBy=['POINTS', 'var0'], "
            "Isosurfaces=[0.4567])\n"
            "view = GetActiveViewOrCreate('RenderView')\n"
            "view.ViewSize = [64, 48]\n"
            "Show(contour, view)\n"
            "ResetCamera(view)\n"
            "SaveScreenshot('out.png', view, ImageResolution=[64, 48])\n"
        )
        work = tmp_path / "work"
        prepare_task_data("isosurface", work, small=True)
        cold = PvPythonExecutor(working_dir=work).run(script)
        assert cold.success and cold.nodes_executed > 0

        # drop the in-memory tier: everything must now come from disk
        shared_cache().memory.clear()
        warm = PvPythonExecutor(working_dir=work).run(script)
        assert warm.success
        assert warm.nodes_executed == 0
        assert warm.nodes_cached >= 1

    def test_identical_data_in_different_directories_shares_entries(self, tmp_path):
        """Reader tokens are content-based, so every Table II cell preparing
        its own copy of the same data maps to one cache entry — the property
        that lets workers and repeated runs reuse each other's results."""
        from repro.core.tasks import prepare_task_data
        from repro.pvsim.executor import PvPythonExecutor

        configure_shared_cache(tmp_path / "cache")
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "contour = Contour(Input=reader, ContourBy=['POINTS', 'var0'], "
            "Isosurfaces=[0.4568])\n"
            "contour.UpdatePipeline()\n"
        )
        prepare_task_data("isosurface", tmp_path / "work_a", small=True)
        first = PvPythonExecutor(working_dir=tmp_path / "work_a").run(script)
        assert first.success and first.nodes_executed > 0

        # a different session directory with its own (identical) data copy
        prepare_task_data("isosurface", tmp_path / "work_b", small=True)
        shared_cache().memory.clear()  # force the disk tier to serve it
        second = PvPythonExecutor(working_dir=tmp_path / "work_b").run(script)
        assert second.success
        assert second.nodes_executed == 0
