"""Unit tests for Bounds and cell-type utilities."""

import numpy as np
import pytest

from repro.datamodel import Bounds, CellType, cell_type_name
from repro.datamodel.cells import (
    cell_edges,
    is_surface,
    is_volumetric,
    surface_triangles_of_tetra,
    tetrahedralize_cell,
    triangulate_cell,
)


class TestBounds:
    def test_from_points(self):
        b = Bounds.from_points([[0, 0, 0], [1, 2, 3]])
        assert b.as_tuple() == (0, 1, 0, 2, 0, 3)

    def test_empty(self):
        assert Bounds.empty().is_empty
        assert Bounds.from_points(np.zeros((0, 3))).is_empty

    def test_center_and_lengths(self):
        b = Bounds(0, 2, 0, 4, 0, 6)
        assert b.center == (1, 2, 3)
        assert b.lengths == (2, 4, 6)
        assert b.max_length == 6

    def test_diagonal(self):
        b = Bounds(0, 3, 0, 4, 0, 0)
        assert b.diagonal == pytest.approx(5.0)

    def test_contains(self):
        b = Bounds(0, 1, 0, 1, 0, 1)
        assert b.contains((0.5, 0.5, 0.5))
        assert not b.contains((2.0, 0.5, 0.5))
        assert b.contains((1.05, 0.5, 0.5), tol=0.1)

    def test_contains_points_vectorized(self):
        b = Bounds(0, 1, 0, 1, 0, 1)
        pts = np.array([[0.5, 0.5, 0.5], [2, 2, 2]])
        assert list(b.contains_points(pts)) == [True, False]

    def test_union(self):
        a = Bounds(0, 1, 0, 1, 0, 1)
        b = Bounds(2, 3, -1, 0, 0, 5)
        u = a.union(b)
        assert u.as_tuple() == (0, 3, -1, 1, 0, 5)

    def test_union_with_empty(self):
        a = Bounds(0, 1, 0, 1, 0, 1)
        assert a.union(Bounds.empty()).as_tuple() == a.as_tuple()
        assert Bounds.empty().union(a).as_tuple() == a.as_tuple()

    def test_expanded(self):
        b = Bounds(0, 1, 0, 1, 0, 1).expanded(absolute=0.5)
        assert b.xmin == pytest.approx(-0.5)
        assert b.xmax == pytest.approx(1.5)

    def test_corners(self):
        corners = Bounds(0, 1, 0, 1, 0, 1).corners()
        assert corners.shape == (8, 3)
        assert {tuple(c) for c in corners} == {
            (x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)
        }

    def test_from_tuple_roundtrip(self):
        b = Bounds.from_tuple((0, 1, 2, 3, 4, 5))
        assert tuple(b) == (0, 1, 2, 3, 4, 5)

    def test_from_tuple_wrong_length(self):
        with pytest.raises(ValueError):
            Bounds.from_tuple((0, 1, 2))

    def test_empty_center_is_origin(self):
        assert Bounds.empty().center == (0.0, 0.0, 0.0)


class TestCells:
    def test_cell_type_names(self):
        assert cell_type_name(CellType.TETRA) == "tetrahedron"
        assert "unknown" in cell_type_name(99)

    def test_triangulate_quad(self):
        tris = triangulate_cell(CellType.QUAD, (10, 11, 12, 13))
        assert len(tris) == 2
        assert all(len(t) == 3 for t in tris)

    def test_triangulate_triangle_identity(self):
        assert triangulate_cell(CellType.TRIANGLE, (1, 2, 3)) == [(1, 2, 3)]

    def test_triangulate_volumetric_raises(self):
        with pytest.raises(ValueError):
            triangulate_cell(CellType.TETRA, (0, 1, 2, 3))

    def test_tetrahedralize_tetra_identity(self):
        assert tetrahedralize_cell(CellType.TETRA, (0, 1, 2, 3)) == [(0, 1, 2, 3)]

    def test_tetrahedralize_hex_count(self):
        tets = tetrahedralize_cell(CellType.HEXAHEDRON, tuple(range(8)))
        assert len(tets) == 5

    def test_tetrahedralize_wedge_and_pyramid(self):
        assert len(tetrahedralize_cell(CellType.WEDGE, tuple(range(6)))) == 3
        assert len(tetrahedralize_cell(CellType.PYRAMID, tuple(range(5)))) == 2

    def test_tetrahedralize_voxel_reorders(self):
        tets = tetrahedralize_cell(CellType.VOXEL, tuple(range(8)))
        assert len(tets) == 5
        for tet in tets:
            assert len(set(tet)) == 4

    def test_tetrahedralize_surface_raises(self):
        with pytest.raises(ValueError):
            tetrahedralize_cell(CellType.TRIANGLE, (0, 1, 2))

    def test_cell_edges_triangle(self):
        edges = cell_edges(CellType.TRIANGLE, (5, 6, 7))
        assert (5, 6) in edges and (6, 7) in edges and (7, 5) in edges

    def test_cell_edges_polyline(self):
        edges = cell_edges(CellType.POLY_LINE, (1, 2, 3, 4))
        assert edges == [(1, 2), (2, 3), (3, 4)]

    def test_cell_edges_vertex_empty(self):
        assert cell_edges(CellType.VERTEX, (0,)) == []

    def test_tetra_surface_faces(self):
        faces = surface_triangles_of_tetra((0, 1, 2, 3))
        assert len(faces) == 4

    def test_volumetric_and_surface_predicates(self):
        assert is_volumetric(CellType.TETRA)
        assert is_volumetric(CellType.HEXAHEDRON)
        assert not is_volumetric(CellType.TRIANGLE)
        assert is_surface(CellType.TRIANGLE)
        assert not is_surface(CellType.LINE)

    def test_hexahedron_tets_cover_volume(self):
        # unit cube split into 5 tets must have total volume 1
        points = np.array(
            [
                [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
                [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
            ],
            dtype=float,
        )
        total = 0.0
        for tet in tetrahedralize_cell(CellType.HEXAHEDRON, tuple(range(8))):
            p0, p1, p2, p3 = points[list(tet)]
            total += abs(np.dot(np.cross(p1 - p0, p2 - p0), p3 - p0)) / 6.0
        assert total == pytest.approx(1.0)
