"""Tests for interpolation, stream tracing, tube, glyph, threshold, surfaces, Delaunay."""

import numpy as np
import pytest

from repro.algorithms import (
    FieldInterpolator,
    delaunay_3d,
    delaunay_tetrahedra,
    extract_surface,
    glyph,
    point_cloud_seeds,
    stream_tracer,
    threshold,
    trilinear_interpolate,
    tube,
)
from repro.algorithms.delaunay3d import DelaunayError
from repro.algorithms.glyph import arrow_source, cone_source, sphere_source
from repro.algorithms.stream_tracer import StreamTracerOptions, line_seeds, trace_streamline
from repro.datamodel import ImageData, PolyData, UnstructuredGrid


class TestInterpolation:
    def test_trilinear_exact_at_grid_points(self, sphere_field):
        pts = sphere_field.get_points()[:50]
        values = trilinear_interpolate(sphere_field, "scalar", pts)
        assert np.allclose(values, sphere_field.point_data["scalar"].as_scalar()[:50], atol=1e-12)

    def test_trilinear_linear_function_reproduced(self):
        img = ImageData((5, 5, 5), origin=(0, 0, 0), spacing=(1, 1, 1))
        pts = img.get_points()
        img.add_point_array("f", 2.0 * pts[:, 0] + 3.0 * pts[:, 1] - pts[:, 2])
        query = np.array([[1.3, 2.7, 0.2], [3.9, 0.1, 3.5]])
        expected = 2.0 * query[:, 0] + 3.0 * query[:, 1] - query[:, 2]
        assert np.allclose(trilinear_interpolate(img, "f", query), expected, atol=1e-10)

    def test_trilinear_clamps_outside(self, sphere_field):
        inside = trilinear_interpolate(sphere_field, "scalar", [[0.0, 0.0, 0.0]])
        outside = trilinear_interpolate(sphere_field, "scalar", [[99.0, 0.0, 0.0]])
        assert np.isfinite(outside[0])
        # the 20-sample grid has no node exactly at the origin, so the
        # interpolated peak is close to (but slightly below) the analytic 1.0
        assert 0.85 < inside[0] <= 1.0
        assert outside[0] < inside[0]

    def test_trilinear_vector_components(self, vortex_field):
        out = trilinear_interpolate(vortex_field, "velocity", [[0.0, 0.0, 0.0]])
        assert out.shape == (1, 3)

    def test_missing_array(self, sphere_field):
        with pytest.raises(KeyError):
            trilinear_interpolate(sphere_field, "missing", [[0, 0, 0]])

    def test_idw_exact_at_data_points(self, disk_flow_small):
        interp = FieldInterpolator(disk_flow_small)
        pts = disk_flow_small.get_points()[:10]
        values = interp.interpolate("Temp", pts)
        assert np.allclose(values, disk_flow_small.point_data["Temp"].as_scalar()[:10], rtol=1e-6)

    def test_idw_within_data_range(self, disk_flow_small):
        interp = FieldInterpolator(disk_flow_small)
        lo, hi = disk_flow_small.scalar_range("Temp")
        center = disk_flow_small.bounds().center
        value = interp.interpolate("Temp", [center])[0]
        assert lo - 1e-9 <= value <= hi + 1e-9

    def test_velocity_requires_vector(self, disk_flow_small):
        interp = FieldInterpolator(disk_flow_small)
        with pytest.raises(ValueError):
            interp.velocity("Temp", [[0, 0, 0]])

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            FieldInterpolator(UnstructuredGrid(np.zeros((0, 3))))


class TestStreamTracer:
    def test_seeds_inside_bounds(self, vortex_field):
        seeds = point_cloud_seeds(vortex_field, n_points=50, seed=1)
        assert seeds.shape == (50, 3)
        assert vortex_field.bounds().expanded(absolute=1e-9).contains_points(seeds).all()

    def test_line_seeds(self):
        seeds = line_seeds((0, 0, 0), (1, 0, 0), resolution=5)
        assert seeds.shape == (5, 3)
        assert np.allclose(seeds[-1], [1, 0, 0])

    def test_single_streamline_follows_vortex(self, vortex_field):
        interp = FieldInterpolator(vortex_field)
        options = StreamTracerOptions(max_steps=200, direction="forward")
        positions, times = trace_streamline(interp, "velocity", [0.5, 0.0, 0.0], options)
        assert positions.shape[0] > 10
        # vortex around z: radius approximately conserved
        radii = np.linalg.norm(positions[:, :2], axis=1)
        assert np.all(np.abs(radii - 0.5) < 0.1)
        assert np.all(np.diff(times) > 0)

    def test_stream_tracer_output_structure(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=10, seed=0)
        assert lines.n_lines > 0
        assert "IntegrationTime" in lines.point_data
        assert "SpeedMagnitude" in lines.point_data
        assert "speed" in lines.point_data  # input arrays interpolated along paths

    def test_streamlines_stay_in_bounds(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=10, seed=0)
        assert vortex_field.bounds().expanded(absolute=1e-6).contains_points(lines.points).all()

    def test_direction_forward_vs_both(self, vortex_field):
        options_fwd = StreamTracerOptions(direction="forward", max_steps=100)
        options_both = StreamTracerOptions(direction="both", max_steps=100)
        seeds = np.array([[0.5, 0.0, 0.0]])
        fwd = stream_tracer(vortex_field, "velocity", seeds=seeds, options=options_fwd)
        both = stream_tracer(vortex_field, "velocity", seeds=seeds, options=options_both)
        assert both.n_points > fwd.n_points

    def test_invalid_direction(self, vortex_field):
        with pytest.raises(ValueError):
            stream_tracer(
                vortex_field, "velocity", n_seed_points=2,
                options=StreamTracerOptions(direction="sideways"),
            )

    def test_missing_vector_array(self, sphere_field):
        with pytest.raises(ValueError):
            stream_tracer(sphere_field, None, n_seed_points=2)

    def test_unstructured_input(self, disk_flow_small):
        lines = stream_tracer(disk_flow_small, "V", n_seed_points=8, seed=2)
        assert lines.n_lines > 0
        assert "Temp" in lines.point_data


class TestTubeAndGlyph:
    def test_tube_geometry(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=4, seed=0)
        wrapped = tube(lines, radius=0.05, n_sides=8)
        assert wrapped.n_triangles > 0
        assert "Normals" in wrapped.point_data
        assert wrapped.n_points == sum(len(l) for l in lines.lines) * 8

    def test_tube_radius_controls_size(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=4, seed=0)
        thin = tube(lines, radius=0.01, n_sides=6)
        thick = tube(lines, radius=0.1, n_sides=6)
        assert thick.bounds().diagonal > thin.bounds().diagonal

    def test_tube_carries_point_data(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=3, seed=0)
        wrapped = tube(lines, radius=0.05)
        assert "speed" in wrapped.point_data

    def test_tube_requires_lines(self):
        with pytest.raises(ValueError):
            tube(PolyData(points=[[0, 0, 0]]), radius=0.0)
        assert tube(PolyData(points=[[0, 0, 0]]), radius=0.1).is_empty

    def test_tube_vary_radius(self, vortex_field):
        lines = stream_tracer(vortex_field, "velocity", n_seed_points=3, seed=0)
        varied = tube(lines, radius=0.02, vary_radius_by="speed", radius_factor=3.0)
        assert varied.n_triangles > 0
        with pytest.raises(KeyError):
            tube(lines, radius=0.02, vary_radius_by="missing")

    def test_glyph_sources_are_closed_meshes(self):
        for source in (cone_source(), arrow_source(), sphere_source()):
            assert source.n_triangles > 0
            assert source.n_points > 0

    def test_glyph_placement_and_count(self, can_points_small):
        result = glyph(can_points_small, "sphere", max_glyphs=20)
        per_glyph = sphere_source().n_points
        assert result.n_points % per_glyph == 0
        assert result.n_points // per_glyph <= 21

    def test_glyph_orientation_array_required_to_exist(self, can_points_small):
        with pytest.raises(KeyError):
            glyph(can_points_small, "cone", orientation_array="missing")

    def test_glyph_orientation_must_be_vector(self, can_points_small):
        with pytest.raises(ValueError):
            glyph(can_points_small, "cone", orientation_array="PointId")

    def test_glyph_carries_anchor_data(self, disk_flow_small):
        result = glyph(disk_flow_small, "cone", orientation_array="V", max_glyphs=10)
        assert "Temp" in result.point_data

    def test_glyph_unknown_type(self, can_points_small):
        with pytest.raises(ValueError):
            glyph(can_points_small, "torus")


class TestThresholdAndSurface:
    def test_threshold_selects_cells(self, sphere_field):
        kept = threshold(sphere_field, "scalar", lower=0.8, upper=2.0)
        assert 0 < kept.n_cells
        all_cells = threshold(sphere_field, "scalar", lower=-10, upper=10)
        assert kept.n_cells < all_cells.n_cells

    def test_threshold_any_vs_all(self, sphere_field):
        strict = threshold(sphere_field, "scalar", lower=0.9, upper=2.0, all_points=True)
        loose = threshold(sphere_field, "scalar", lower=0.9, upper=2.0, all_points=False)
        assert loose.n_cells >= strict.n_cells

    def test_threshold_missing_array(self, sphere_field):
        with pytest.raises(KeyError):
            threshold(sphere_field, "missing", 0, 1)

    def test_extract_surface_of_image(self, sphere_field):
        surface = extract_surface(sphere_field)
        assert surface.n_triangles > 0
        assert "Normals" in surface.point_data

    def test_extract_surface_of_unstructured(self, disk_flow_small):
        surface = extract_surface(disk_flow_small)
        assert surface.n_triangles > 0
        assert "Temp" in surface.point_data


class TestDelaunay:
    def test_requires_four_points(self):
        with pytest.raises(DelaunayError):
            delaunay_tetrahedra(np.zeros((3, 3)))

    def test_single_tetrahedron(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        tets = delaunay_tetrahedra(pts, backend="bowyer-watson")
        assert tets.shape == (1, 4)
        assert set(tets[0]) == {0, 1, 2, 3}

    def test_cube_volume_covered(self):
        rng = np.random.default_rng(0)
        pts = np.vstack(
            [
                np.array([(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)], dtype=float),
                rng.random((20, 3)),
            ]
        )
        tets = delaunay_tetrahedra(pts, backend="bowyer-watson")

        def volume(tet):
            p0, p1, p2, p3 = pts[tet]
            return abs(np.dot(np.cross(p1 - p0, p2 - p0), p3 - p0)) / 6.0

        total = sum(volume(t) for t in tets)
        # the 8 cube corners are exactly co-spherical, a classic degenerate
        # configuration for incremental Delaunay; allow a small deficit from
        # sliver suppression (the random-point comparison against qhull below
        # checks exact volumes on non-degenerate input)
        assert total == pytest.approx(1.0, rel=2e-2)

    def test_matches_qhull_volume(self, rng):
        pts = rng.random((40, 3))
        native = delaunay_tetrahedra(pts, backend="bowyer-watson")
        reference = delaunay_tetrahedra(pts, backend="qhull")

        def total_volume(tets):
            vol = 0.0
            for tet in tets:
                p0, p1, p2, p3 = pts[tet]
                vol += abs(np.dot(np.cross(p1 - p0, p2 - p0), p3 - p0)) / 6.0
            return vol

        assert total_volume(native) == pytest.approx(total_volume(reference), rel=1e-6)

    def test_delaunay_filter_preserves_point_data(self, can_points_small):
        grid = delaunay_3d(can_points_small, backend="qhull")
        assert grid.n_cells > 0
        assert "DISPL" in grid.point_data
        assert grid.n_points == can_points_small.n_points

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            delaunay_tetrahedra(np.random.rand(5, 3), backend="magic")

    def test_auto_backend_switches(self, rng):
        pts = rng.random((30, 3))
        grid_native = delaunay_3d(UnstructuredGrid(pts), backend="auto", max_native_points=100)
        grid_qhull = delaunay_3d(UnstructuredGrid(pts), backend="auto", max_native_points=10)
        assert grid_native.n_cells > 0
        assert grid_qhull.n_cells > 0
