"""Tests for the ``repro`` command-line entry point.

The CLI is a thin shell over the library (harness, tiered cache, batch
runner); these tests drive ``repro.cli.main`` in-process and assert on its
output and on the cache state it leaves behind.
"""

import json
from pathlib import Path

import pytest

from repro.cli import default_cache_dir, main, resolve_cache_dir
from repro.engine import configure_shared_cache
from repro.engine.cache import CACHE_DIR_ENV_VAR
from repro.pvsim import state


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Keep CLI runs hermetic: fresh session, no leaked disk tier/env var."""
    monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
    state.reset_session()
    yield
    state.reset_session()
    configure_shared_cache(None)


class TestCacheDirResolution:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "flag")) == tmp_path / "flag"

    def test_env_var_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_default_is_user_cache_dir(self):
        assert resolve_cache_dir(None) == default_cache_dir()


class TestCacheCommands:
    def test_stats_on_missing_root(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "does not exist" in capsys.readouterr().out

    def test_stats_and_clear_round_trip(self, tmp_path, capsys):
        from repro.engine import DiskCache

        disk = DiskCache(tmp_path / "cache")
        disk.put("deadbeef", {"some": "value"})

        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out

        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        assert len(DiskCache(tmp_path / "cache")) == 0

    def test_stats_human_sizes_and_kind_breakdown(self, tmp_path, capsys):
        import numpy as np

        from repro.data import generate_marschner_lobb
        from repro.engine import DiskCache

        disk = DiskCache(tmp_path / "cache")
        disk.put("a" * 40, generate_marschner_lobb(8))
        disk.put("b" * 40, generate_marschner_lobb(10))
        disk.put("c" * 40, np.zeros(64 * 1024))  # pushes the total past 1 KiB

        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries:    3" in out
        assert "KiB" in out or "MiB" in out  # human-readable, not raw bytes only
        assert "entries by kind:" in out
        assert "ImageData" in out and "2" in out
        assert "ndarray" in out


class TestBenchCommand:
    def test_bench_reports_warm_speedup_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--cache-dir", str(tmp_path / "cache"), "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold run" in out and "warm run" in out

        payload = json.loads(json_path.read_text())
        assert payload["warm_nodes_executed"] == 0
        assert payload["cold_nodes_executed"] > 0
        assert payload["warm_seconds"] < payload["cold_seconds"]


class TestEvalCommand:
    def test_eval_prints_table_and_persists_cache(self, tmp_path, capsys):
        code = main(
            [
                "eval",
                str(tmp_path / "work"),
                "--models",
                "gpt-4",
                "--tasks",
                "isosurface",
                "--resolution",
                "96x72",
                "--no-chatvis",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Isosurfacing" in out
        assert "gpt-4" in out
        assert "disk tier:" in out
        assert list((tmp_path / "cache").rglob("*.bin"))

    def test_eval_no_cache_runs_memory_only(self, tmp_path, capsys):
        code = main(
            [
                "eval",
                str(tmp_path / "work"),
                "--models",
                "gpt-4",
                "--tasks",
                "isosurface",
                "--resolution",
                "96x72",
                "--no-chatvis",
                "--no-cache",
            ]
        )
        assert code == 0
        assert "disk tier:" not in capsys.readouterr().out

    def test_bad_resolution_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["eval", str(tmp_path), "--resolution", "banana"])


class TestSuiteCommands:
    def test_list_prints_catalog_summary(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios from" in out
        assert "iso-values" in out

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["suite", "list", "--family", "flow", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload and all(entry["family"] == "flow" for entry in payload)
        assert all("key" in entry for entry in payload)

    def test_canonical_listing_honors_filters(self, capsys):
        assert main(["suite", "list", "--canonical", "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 5
        assert main(["suite", "list", "--canonical", "--family", "flow", "--limit", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload] == ["streamlines"]

    def test_run_warm_rerun_and_report(self, tmp_path, capsys):
        work = str(tmp_path / "work")
        args = ["suite", "run", work, "--limit", "3", "--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 executed" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "fully warm" in out

        results = str(Path(work) / "suite-results.jsonl")
        assert main(["suite", "report", results]) == 0
        out = capsys.readouterr().out
        assert "# Scenario suite report" in out
        assert "| method |" in out

    def test_run_writes_report_artifacts(self, tmp_path, capsys):
        work = str(tmp_path / "work")
        report_md = tmp_path / "report.md"
        report_json = tmp_path / "report.json"
        code = main(
            [
                "suite", "run", work, "--limit", "2", "--no-cache",
                "--report", str(report_md), "--report-json", str(report_json),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert "# Scenario suite report" in report_md.read_text()
        assert json.loads(report_json.read_text())["n_cells"] == 2

    def test_report_on_missing_store(self, tmp_path, capsys):
        assert main(["suite", "report", str(tmp_path / "nope.jsonl")]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_report_on_empty_store_emits_no_records_notice(self, tmp_path, capsys):
        from repro.scenarios.report import NO_RECORDS_NOTICE

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["suite", "report", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "no records" in out
        assert NO_RECORDS_NOTICE in out


class TestVerifyCommands:
    def test_relations_listing(self, capsys):
        assert main(["verify", "relations"]) == 0
        out = capsys.readouterr().out
        assert "camera-azimuth" in out
        assert "translate-commute" in out

    def test_run_report_and_resume(self, tmp_path, capsys):
        work = str(tmp_path / "work")
        args = [
            "verify", "run", work, "--canonical", "--limit", "1",
            "--relations", "repeat-determinism,translate-commute",
            "--resolution", "96x72", "--no-cache",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out
        assert "0 violation(s)" in out

        # warm resume against the verdict store executes nothing
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

        results = str(Path(work) / "verify-results.jsonl")
        assert main(["verify", "report", results]) == 0
        out = capsys.readouterr().out
        assert "# Verification report" in out
        assert "`repeat-determinism`" in out

    def test_update_goldens_then_golden_relation_passes(self, tmp_path, capsys):
        work = str(tmp_path / "work")
        common = ["--canonical", "--limit", "1", "--resolution", "96x72", "--no-cache"]
        assert main(["verify", "update-goldens", work] + common) == 0
        out = capsys.readouterr().out
        assert "stored golden artifacts for 1 scenario(s)" in out

        code = main(
            ["verify", "run", work, "--relations", "golden-image"] + common
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_verify_report_on_missing_store(self, tmp_path, capsys):
        assert main(["verify", "report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no records" in capsys.readouterr().out

    def test_verify_report_on_empty_store(self, tmp_path, capsys):
        from repro.scenarios.report import NO_RECORDS_NOTICE

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["verify", "report", str(empty)]) == 0
        out = capsys.readouterr().out
        assert NO_RECORDS_NOTICE in out
