"""Unit tests for the ``repro.obs`` tracing + metrics subsystem.

Covers the span lifecycle (nesting, error capture, contextvar parentage),
the process-wide enable/disable switch, trace-file round-trips (including
torn trailing lines and Chrome trace-event export), the metrics registry
and its mergeable snapshots, the summary digest, and logging setup.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.obs import (
    METRICS,
    MetricsSnapshot,
    Span,
    TRACE_STATE,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    format_summary,
    logging_setup,
    merge_all,
    read_trace,
    sort_spans,
    span,
    summarize,
    to_chrome_trace,
    tracing_enabled,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import format_key, parse_key


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off and an empty registry."""
    disable_tracing()
    METRICS.reset()
    yield
    disable_tracing()
    METRICS.reset()


# --------------------------------------------------------------------------- #
# spans and the tracer
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_span_records_duration_and_ids(self):
        tracer = enable_tracing(Tracer())
        with tracer.span("work", "test.cat", flavor="plain") as s:
            pass
        assert len(tracer) == 1
        done = tracer.spans()[0]
        assert done is s
        assert done.name == "work" and done.category == "test.cat"
        assert done.attrs == {"flavor": "plain"}
        assert done.duration >= 0.0 and done.start_wall > 0.0
        assert done.status == "ok" and done.error_type is None
        assert done.span_id and done.pid > 0 and done.thread_id > 0

    def test_nesting_links_parent_via_contextvar(self):
        tracer = enable_tracing(Tracer())
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_error_capture_and_truncation(self):
        tracer = enable_tracing(Tracer())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x" * 1000)
        done = tracer.spans()[0]
        assert done.status == "error"
        assert done.error_type == "ValueError"
        assert len(done.error_message) == 500  # message capped

    def test_span_ids_unique_across_threads(self):
        tracer = enable_tracing(Tracer())

        def work():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == 200 and len(set(ids)) == 200

    def test_to_dict_from_dict_round_trip(self):
        original = Span(
            name="n",
            category="c",
            span_id="ab-7",
            parent_id="ab-3",
            pid=11,
            thread_id=22,
            start_wall=123.5,
            duration=0.25,
            attrs={"k": "v"},
        )
        original.set_error(RuntimeError("nope"))
        rebuilt = Span.from_dict(json.loads(json.dumps(original.to_dict())))
        assert rebuilt == original

    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0 and tracer.drain() == []


class TestEnableDisable:
    def test_module_span_is_noop_when_disabled(self):
        assert not tracing_enabled()
        handle = span("anything", "cat", x=1)
        with handle as value:
            assert value is None
        assert span("other") is handle  # the shared singleton: no allocation

    def test_enable_keeps_existing_tracer(self):
        first = enable_tracing()
        again = enable_tracing()
        assert again is first
        swapped = enable_tracing(Tracer())
        assert swapped is not first and TRACE_STATE.tracer is swapped

    def test_disable_returns_tracer_with_spans(self):
        tracer = enable_tracing(Tracer())
        with span("visible"):
            pass
        returned = disable_tracing()
        assert returned is tracer and len(returned) == 1
        assert TRACE_STATE.tracer is None and not tracing_enabled()


# --------------------------------------------------------------------------- #
# trace files
# --------------------------------------------------------------------------- #
def _make_spans():
    return [
        Span(name="b", span_id="2-2", pid=2, start_wall=2.0, duration=0.5),
        Span(name="a", span_id="1-1", pid=1, start_wall=1.0, duration=0.1),
        Span(name="c", span_id="1-3", pid=1, start_wall=2.0, duration=0.2),
    ]


class TestTraceFiles:
    def test_sort_is_canonical(self):
        ordered = sort_spans(_make_spans())
        assert [s.name for s in ordered] == ["a", "c", "b"]

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        metrics = {"counters": {"x": 1.0}, "gauges": {}, "histograms": {}}
        write_trace(path, _make_spans(), metrics=metrics, meta={"command": "repro test"})
        trace = read_trace(path)
        assert [s.name for s in trace.spans] == ["a", "c", "b"]
        assert trace.metrics == metrics
        assert trace.meta == {"command": "repro test"}

    def test_write_is_byte_deterministic_wrt_span_order(self, tmp_path):
        spans = _make_spans()
        write_trace(tmp_path / "fwd.jsonl", spans)
        write_trace(tmp_path / "rev.jsonl", list(reversed(spans)))
        assert (tmp_path / "fwd.jsonl").read_bytes() == (tmp_path / "rev.jsonl").read_bytes()

    def test_read_tolerates_torn_trailing_line(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", _make_spans())
        torn = path.read_text().rstrip("\n")
        path.write_text(torn[: len(torn) - 10])  # writer died mid-line
        assert len(read_trace(path).spans) == 2

    def test_chrome_export_structure(self, tmp_path):
        spans = _make_spans()
        spans[0].set_error(KeyError("k"))
        doc = to_chrome_trace(spans)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        first = events[0]
        assert first["ts"] == pytest.approx(1.0 * 1e6)
        assert first["dur"] == pytest.approx(0.1 * 1e6)
        errored = next(e for e in events if e["args"]["status"] == "error")
        assert errored["args"]["error_type"] == "KeyError"
        out = write_chrome_trace(tmp_path / "c.json", spans)
        assert len(json.loads(out.read_text())["traceEvents"]) == 3


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestMetricKeys:
    def test_format_and_parse_round_trip(self):
        key = format_key("cache_ops_total", (("op", "hit"), ("tier", "disk")))
        assert key == "cache_ops_total{op=hit,tier=disk}"
        assert parse_key(key) == ("cache_ops_total", (("op", "hit"), ("tier", "disk")))
        assert parse_key("bare") == ("bare", ())
        assert format_key("bare") == "bare"


class TestRegistryAndSnapshots:
    def test_incr_gauge_observe(self):
        METRICS.incr("hits", tier="disk")
        METRICS.incr("hits", value=2.0, tier="disk")
        METRICS.gauge("depth", 3.0)
        METRICS.gauge("depth", 2.0)
        METRICS.observe("lat", 0.1)
        METRICS.observe("lat", 0.3)
        snap = METRICS.snapshot()
        assert snap.counters == {"hits{tier=disk}": 3.0}
        assert snap.gauges == {"depth": 2.0}  # last write wins in the registry
        assert snap.histograms["lat"] == {"count": 2.0, "sum": 0.4, "min": 0.1, "max": 0.3}
        assert METRICS.counter_names() == ["hits{tier=disk}"]
        METRICS.reset()
        assert not METRICS.snapshot()

    def test_merge_is_commutative(self):
        a = MetricsSnapshot(
            counters={"c": 1.0},
            gauges={"g": 5.0},
            histograms={"h": {"count": 1.0, "sum": 2.0, "min": 2.0, "max": 2.0}},
        )
        b = MetricsSnapshot(
            counters={"c": 2.0, "d": 1.0},
            gauges={"g": 3.0},
            histograms={"h": {"count": 2.0, "sum": 1.0, "min": 0.25, "max": 0.75}},
        )
        ab = merge_all([a, b]).as_dict()
        ba = merge_all([b, a]).as_dict()
        assert ab == ba
        assert ab["counters"] == {"c": 3.0, "d": 1.0}
        assert ab["gauges"] == {"g": 5.0}
        assert ab["histograms"]["h"] == {"count": 3.0, "sum": 3.0, "min": 0.25, "max": 2.0}

    def test_delta_is_one_jobs_worth(self):
        METRICS.incr("c", value=3.0)
        before = METRICS.snapshot()
        METRICS.incr("c", value=2.0)
        METRICS.incr("new")
        delta = METRICS.snapshot().delta(before)
        assert delta.counters == {"c": 2.0, "new": 1.0}
        # shipping the delta to a fresh registry reproduces exactly the window
        other = MetricsSnapshot()
        other.merge(delta)
        assert other.counters == {"c": 2.0, "new": 1.0}

    def test_snapshot_round_trips_through_json(self):
        METRICS.incr("c", tier="x")
        METRICS.observe("h", 1.5)
        snap = METRICS.snapshot()
        rebuilt = MetricsSnapshot.from_dict(json.loads(json.dumps(snap.as_dict())))
        assert rebuilt.as_dict() == snap.as_dict()

    def test_counter_total_matches_label_subsets(self):
        METRICS.incr("ops", tier="disk", op="hit")
        METRICS.incr("ops", tier="disk", op="miss")
        METRICS.incr("ops", tier="memory", op="hit", value=2.0)
        snap = METRICS.snapshot()
        assert snap.counter_total("ops") == 4.0
        assert snap.counter_total("ops", tier="disk") == 2.0
        assert snap.counter_total("ops", op="hit") == 3.0
        assert snap.counter_total("ops", tier="disk", op="hit") == 1.0
        assert snap.counter_total("nope") == 0.0


# --------------------------------------------------------------------------- #
# the summary digest
# --------------------------------------------------------------------------- #
class TestSummary:
    def test_summarize_and_format(self, tmp_path):
        tracer = enable_tracing(Tracer())
        with tracer.span("suite.run", "phase"):
            with tracer.span("cell-a", "suite.cell"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("cell-b", "suite.cell"):
                raise RuntimeError("bad cell")
        METRICS.incr("cache_ops_total", tier="disk", op="hit", value=3.0)
        METRICS.incr("cache_ops_total", tier="disk", op="miss", value=1.0)
        METRICS.incr("llm_calls_total", model="m", outcome="ok", value=2.0)
        METRICS.incr("llm_retries_total", model="m")
        path = write_trace(
            tmp_path / "t.jsonl",
            disable_tracing().drain(),
            metrics=METRICS.snapshot().as_dict(),
            meta={"command": "repro demo"},
        )
        digest = summarize(read_trace(path))
        assert digest["span_count"] == 3 and digest["error_count"] == 1
        assert digest["phases"]["suite.cell"]["count"] == 2
        assert digest["phases"]["suite.cell"]["errors"] == 1
        assert digest["caches"]["disk"]["hits"] == 3
        assert digest["caches"]["disk"]["hit_rate"] == pytest.approx(0.75)
        assert digest["llm"]["calls"] == 2 and digest["llm"]["retries"] == 1
        text = format_summary(digest)
        assert "repro demo" in text
        assert "suite.cell" in text and "75.0%" in text
        assert "slowest spans" in text


# --------------------------------------------------------------------------- #
# logging setup
# --------------------------------------------------------------------------- #
class TestLoggingSetup:
    def test_idempotent_and_level_parsing(self):
        root = logging.getLogger("repro")

        def ours():
            return [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]

        # an earlier test may have configured logging through the CLI already
        preexisting = ours()
        for handler in preexisting:
            root.removeHandler(handler)
        try:
            logging_setup("info")
            assert len(ours()) == 1
            assert root.level == logging.INFO
            logging_setup("debug")  # reconfigures in place, no second handler
            assert len(ours()) == 1
            assert root.level == logging.DEBUG
            with pytest.raises(ValueError):
                logging_setup("loud")
        finally:
            for handler in ours():
                root.removeHandler(handler)
            for handler in preexisting:
                root.addHandler(handler)
            root.setLevel(logging.NOTSET)
            root.propagate = True  # logging_setup turned this off
