"""Tests for the metamorphic & differential verification subsystem."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenarios import ScenarioSpec, build_verify_report, canonical_scenarios
from repro.scenarios.catalog import CANONICAL_OPERATIONS
from repro.scenarios.report import NO_RECORDS_NOTICE, SuiteReport, VerifyReport
from repro.scenarios.spec import OperationStep, isosurface, ops
from repro.verify import (
    GoldenStore,
    VerifyRunner,
    inject_mutation,
    relation_names,
    relations_for,
    run_verify_cell,
    verify_cell_key,
)
from repro.verify.comparators import (
    compare_images,
    datasets_close,
    images_identical,
    point_sets_close,
)
from repro.verify.pipelines import (
    apply_operation_chain,
    inject_before_screenshot,
    load_scenario_dataset,
    run_scenario_script,
    scenario_script,
)

RESOLUTION = (96, 72)


@pytest.fixture(scope="module", autouse=True)
def _clear_shared_cache_after_module():
    """The relations deliberately ride the process-global shared cache; other
    test modules (e.g. the eval CLI's cold-run assertions) must not inherit
    the warmth."""
    yield
    from repro.engine.cache import shared_cache

    shared_cache().clear()


@pytest.fixture(scope="module")
def iso_scenario():
    return [s for s in canonical_scenarios() if s.name == "isosurface"][0]


@pytest.fixture(scope="module")
def canonical_pair():
    return [s for s in canonical_scenarios() if s.name in ("isosurface", "slice_contour")]


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_at_least_eight_builtin_relations(self):
        assert len(relation_names()) >= 8

    def test_canonical_scenarios_carry_operations(self):
        for scenario in canonical_scenarios():
            assert scenario.operations == CANONICAL_OPERATIONS[scenario.name]

    def test_every_canonical_scenario_has_applicable_relations(self):
        for scenario in canonical_scenarios():
            names = [r.name for r in relations_for(scenario)]
            # the image-level relations apply universally
            assert {"camera-azimuth", "camera-elevation", "resolution-rescale"} <= set(names)

    def test_geometric_relations_select_geometric_scenarios(self):
        by_name = {s.name: s for s in canonical_scenarios()}
        iso_names = {r.name for r in relations_for(by_name["isosurface"])}
        stream_names = {r.name for r in relations_for(by_name["streamlines"])}
        assert "translate-commute" in iso_names
        assert "translate-commute" not in stream_names

    def test_relations_axis_overrides_applicability(self, iso_scenario):
        spec = ScenarioSpec(
            name="verify-axis",
            family="contour",
            datasets=(iso_scenario.task.data_recipes or None) or (_ml_recipe(),),
            operations=(ops("v0p5", isosurface(value=0.5)),),
            relations=("camera-azimuth", "scalar-shift"),
        )
        scenario = spec.expand()[0]
        assert scenario.relations == ("camera-azimuth", "scalar-shift")
        assert [r.name for r in relations_for(scenario)] == ["camera-azimuth", "scalar-shift"]

    def test_unknown_relation_name_rejected(self, iso_scenario):
        with pytest.raises(KeyError):
            VerifyRunner([iso_scenario], relations=["no-such-relation"])

    def test_cell_key_depends_on_relation_and_resolution(self, iso_scenario):
        base = verify_cell_key(iso_scenario, "camera-azimuth", (96, 72))
        assert verify_cell_key(iso_scenario, "camera-elevation", (96, 72)) != base
        assert verify_cell_key(iso_scenario, "camera-azimuth", (128, 96)) != base


def _ml_recipe():
    from repro.core.tasks import DataRecipe

    return DataRecipe.make("ml-r20.vtk", "marschner_lobb", resolution=20)


# --------------------------------------------------------------------------- #
# script plumbing
# --------------------------------------------------------------------------- #
class TestScriptPlumbing:
    def test_canonical_scripts_have_injection_seam(self):
        for scenario in canonical_scenarios():
            script = scenario_script(scenario, RESOLUTION)
            injected = inject_before_screenshot(script, ["_verify_marker = 1"])
            lines = injected.splitlines()
            marker = lines.index("_verify_marker = 1")
            assert lines[marker + 1].lstrip().startswith("SaveScreenshot")

    def test_inject_without_screenshot_raises(self):
        with pytest.raises(ValueError):
            inject_before_screenshot("x = 1\n", ["y = 2"])

    def test_run_scenario_script_produces_image(self, iso_scenario, tmp_path):
        run = run_scenario_script(iso_scenario, tmp_path, resolution=RESOLUTION)
        assert run.ok
        assert run.image.shape[0] == RESOLUTION[1]
        assert run.image.shape[1] == RESOLUTION[0]


# --------------------------------------------------------------------------- #
# comparators
# --------------------------------------------------------------------------- #
class TestComparators:
    def test_images_identical_detects_single_pixel_flip(self):
        a = np.zeros((8, 8, 3), dtype=np.uint8)
        b = a.copy()
        assert images_identical(a, b).ok
        b[3, 3, 0] = 255
        result = images_identical(a, b)
        assert not result.ok
        assert result.metrics["differing_pixels"] == 1.0

    def test_compare_images_rejects_blank_frames(self):
        white = np.ones((16, 16, 3))
        result = compare_images(white, white, min_ssim=0.5)
        assert not result.ok
        assert "blank" in result.details

    def test_datasets_close_honors_affine_map(self, iso_scenario, tmp_path):
        from repro.algorithms.transform import translate_dataset

        dataset = load_scenario_dataset(iso_scenario, tmp_path)
        steps = [op for op in iso_scenario.operations]
        out = apply_operation_chain(dataset, steps)
        moved = apply_operation_chain(translate_dataset(dataset, (0.5, 0.0, 0.0)), steps)
        assert datasets_close(out, moved, offset=(0.5, 0.0, 0.0), compare_arrays=False).ok
        assert not datasets_close(out, moved, compare_arrays=False).ok

    def test_point_sets_close_is_order_invariant(self):
        from repro.datamodel import PolyData

        points = np.random.default_rng(3).uniform(size=(50, 3))
        a = PolyData(points=points)
        b = PolyData(points=points[::-1])
        assert point_sets_close(a, b).ok


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
class TestRunner:
    def test_clean_tree_has_zero_violations_and_warm_run_executes_fewer_nodes(
        self, canonical_pair, tmp_path
    ):
        runner = VerifyRunner(
            canonical_pair,
            working_dir=tmp_path / "cold",
            store=tmp_path / "verify.jsonl",
            resolution=RESOLUTION,
        )
        cold = runner.run()
        assert not cold.failures, cold.failures
        assert cold.violations == []
        assert cold.executed == cold.total > 0
        assert cold.nodes_executed > 0

        # resuming against the store re-executes nothing
        resumed = VerifyRunner(
            canonical_pair,
            working_dir=tmp_path / "cold",
            store=tmp_path / "verify.jsonl",
            resolution=RESOLUTION,
        ).run()
        assert resumed.executed == 0
        assert resumed.skipped == resumed.total

        # a fresh-store re-run over the now-warm shared cache still executes
        # every cell but strictly fewer pipeline nodes than the cold run
        warm = VerifyRunner(
            canonical_pair,
            working_dir=tmp_path / "warm",
            store=tmp_path / "verify2.jsonl",
            resolution=RESOLUTION,
        ).run()
        assert warm.executed == warm.total
        assert warm.nodes_executed < cold.nodes_executed

    def test_verdict_records_shape(self, iso_scenario, tmp_path):
        record = run_verify_cell(
            iso_scenario, "translate-commute", tmp_path, resolution=RESOLUTION
        )
        assert record["scenario"] == "isosurface"
        assert record["relation"] == "translate-commute"
        assert record["violation"] is False
        assert record["nodes_executed"] >= 0
        json.dumps(record)  # records must be JSONL-serializable

    def test_store_records_are_keyed_and_resumable(self, iso_scenario, tmp_path):
        store_path = tmp_path / "store.jsonl"
        runner = VerifyRunner(
            [iso_scenario],
            relations=["repeat-determinism"],
            working_dir=tmp_path,
            store=store_path,
            resolution=RESOLUTION,
        )
        summary = runner.run()
        assert summary.executed == 1
        lines = [json.loads(x) for x in store_path.read_text().splitlines()]
        assert lines[0]["key"] == runner.cells()[0][2]


# --------------------------------------------------------------------------- #
# the oracle must be able to fail: seeded mutation tests
# --------------------------------------------------------------------------- #
class TestMutationDetection:
    def test_seeded_isovalue_off_by_one_bin_is_flagged(self, iso_scenario, tmp_path):
        """An off-by-one-bin isovalue injected into the contour variant only
        must violate the commutation relations (and pass without it)."""
        clean = run_verify_cell(
            iso_scenario, "translate-commute", tmp_path / "clean", resolution=RESOLUTION
        )
        assert clean["violation"] is False

        with inject_mutation("contour-variant-isovalue", 0.05):
            mutated = run_verify_cell(
                iso_scenario, "translate-commute", tmp_path / "mut", resolution=RESOLUTION
            )
        assert mutated["violation"] is True
        assert "differs" in mutated["details"] or "diverge" in mutated["details"]

    def test_scalar_shift_relation_also_catches_the_mutation(self, iso_scenario, tmp_path):
        with inject_mutation("contour-variant-isovalue", 0.05):
            mutated = run_verify_cell(
                iso_scenario, "scalar-shift", tmp_path, resolution=RESOLUTION
            )
        assert mutated["violation"] is True

    def test_runner_summary_reports_the_violation(self, iso_scenario, tmp_path):
        with inject_mutation("contour-variant-isovalue", 0.05):
            summary = VerifyRunner(
                [iso_scenario],
                relations=["translate-commute"],
                working_dir=tmp_path,
                store=None,
                resolution=RESOLUTION,
            ).run()
        assert len(summary.violations) == 1
        assert not summary.clean


# --------------------------------------------------------------------------- #
# goldens
# --------------------------------------------------------------------------- #
class TestGoldenStore:
    def test_update_compare_roundtrip(self, iso_scenario, tmp_path):
        runner = VerifyRunner(
            [iso_scenario],
            working_dir=tmp_path,
            goldens_dir=tmp_path / "goldens",
            resolution=RESOLUTION,
        )
        assert runner.update_goldens() == ["isosurface"]

        record = run_verify_cell(
            iso_scenario,
            "golden-image",
            tmp_path / "cell",
            resolution=RESOLUTION,
            goldens_dir=tmp_path / "goldens",
        )
        assert record["violation"] is False
        assert record["skipped"] is False

    def test_missing_golden_is_skip_not_violation(self, iso_scenario, tmp_path):
        record = run_verify_cell(
            iso_scenario,
            "golden-image",
            tmp_path / "cell",
            resolution=RESOLUTION,
            goldens_dir=tmp_path / "empty-goldens",
        )
        assert record["skipped"] is True
        assert record["violation"] is False

    def test_image_drift_is_flagged_with_diff_summary(self, iso_scenario, tmp_path):
        store = GoldenStore(tmp_path / "goldens")
        run = run_scenario_script(iso_scenario, tmp_path / "render", resolution=RESOLUTION)
        script = scenario_script(iso_scenario, RESOLUTION)
        entry = store.update(iso_scenario, run.image, script, resolution=RESOLUTION)

        drifted = run.image.copy()
        drifted[: drifted.shape[0] // 2] = 0  # blacken the top half
        result = store.compare(entry, drifted, script)
        assert not result.ok
        assert "drifted" in result.details

    def test_script_drift_is_flagged_with_unified_diff(self, iso_scenario, tmp_path):
        store = GoldenStore(tmp_path / "goldens")
        run = run_scenario_script(iso_scenario, tmp_path / "render", resolution=RESOLUTION)
        script = scenario_script(iso_scenario, RESOLUTION)
        entry = store.update(iso_scenario, run.image, script, resolution=RESOLUTION)

        hallucinated = script + "\nFooBarFilter(Input=contour)\n"
        result = store.compare(entry, run.image, hallucinated)
        assert not result.ok
        assert "FooBarFilter" in result.details

    def test_updating_goldens_invalidates_stored_verdicts(self, iso_scenario, tmp_path):
        """A 'skipped: no golden' verdict must not satisfy a resume after
        `update-goldens` — the cell key carries the golden digests."""
        kwargs = dict(
            working_dir=tmp_path / "w",
            store=tmp_path / "v.jsonl",
            goldens_dir=tmp_path / "goldens",
            resolution=RESOLUTION,
            relations=["golden-image"],
        )
        before = VerifyRunner([iso_scenario], **kwargs).run()
        assert before.records[0]["skipped"] is True

        VerifyRunner([iso_scenario], **kwargs).update_goldens()
        after = VerifyRunner([iso_scenario], **kwargs).run()
        assert after.executed == 1  # not served from the stale store
        assert after.records[0]["skipped"] is False

    def test_corrupt_index_fails_loudly(self, iso_scenario, tmp_path):
        root = tmp_path / "goldens"
        root.mkdir()
        (root / "index.json").write_text("{ not json")
        with pytest.raises(ValueError, match="corrupt"):
            GoldenStore(root).lookup(iso_scenario, resolution=RESOLUTION)

    def test_store_is_content_addressed(self, iso_scenario, canonical_pair, tmp_path):
        store = GoldenStore(tmp_path / "goldens")
        image = np.zeros((4, 4, 3), dtype=np.uint8)
        store.update(canonical_pair[0], image, "a = 1\n", resolution=RESOLUTION)
        store.update(canonical_pair[1], image, "a = 1\n", resolution=RESOLUTION)
        assert len(list((tmp_path / "goldens" / "images").glob("*.npz"))) == 1
        assert len(list((tmp_path / "goldens" / "scripts").glob("*.py"))) == 1
        assert len(store) == 2


# --------------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------------- #
class TestVerifyReport:
    def _records(self):
        return [
            {
                "scenario": "a", "family": "contour", "relation": "camera-azimuth",
                "violation": False, "skipped": False, "nodes_executed": 3, "nodes_cached": 1,
            },
            {
                "scenario": "a", "family": "contour", "relation": "scalar-shift",
                "violation": True, "skipped": False, "details": "geometry differs",
                "nodes_executed": 2, "nodes_cached": 0,
            },
            {
                "scenario": "b", "family": "flow", "relation": "camera-azimuth",
                "violation": False, "skipped": True, "nodes_executed": 0, "nodes_cached": 0,
            },
        ]

    def test_matrix_aggregation(self):
        report = build_verify_report(self._records())
        assert report.relations == ["camera-azimuth", "scalar-shift"]
        assert report.families == ["contour", "flow"]
        assert report.n_scenarios == 2
        assert report.nodes_executed == 5
        assert len(report.violations) == 1
        assert not report.clean

    def test_markdown_matrix_names_the_violation(self):
        text = build_verify_report(self._records()).to_markdown()
        assert "## Verification matrix" in text
        assert "`scalar-shift` on `a`: geometry differs" in text

    def test_empty_reports_emit_no_records_notice(self):
        assert NO_RECORDS_NOTICE in VerifyReport().to_markdown()
        assert NO_RECORDS_NOTICE in SuiteReport().to_markdown()

    def test_json_roundtrip(self, tmp_path):
        report = build_verify_report(self._records())
        path = report.write_json(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["totals"]["scalar-shift"]["violations"] == 1


# --------------------------------------------------------------------------- #
# relation-specific edge coverage
# --------------------------------------------------------------------------- #
class TestRelationDetails:
    def test_threshold_commute_is_exact(self, iso_scenario, tmp_path):
        record = run_verify_cell(
            iso_scenario, "threshold-commute", tmp_path, resolution=RESOLUTION
        )
        assert not record["violation"]
        assert record["metrics"]["max_point_delta"] == 0.0

    def test_clip_commute_avoids_slice_axis(self, canonical_pair, tmp_path):
        slice_scenario = [s for s in canonical_pair if s.name == "slice_contour"][0]
        record = run_verify_cell(
            slice_scenario, "clip-commute", tmp_path, resolution=RESOLUTION
        )
        assert not record["violation"], record["details"]

    def test_engine_error_in_variant_is_a_violation_not_a_failure(self, iso_scenario, tmp_path):
        bad = OperationStep.make("contour", value=0.5, array="no_such_array")
        scenario = iso_scenario.__class__(
            name="broken-variant",
            family="contour",
            spec_name="test",
            phrasing="paper",
            task=iso_scenario.task,
            operations=(bad,),
        )
        record = run_verify_cell(
            scenario, "translate-commute", tmp_path, resolution=RESOLUTION
        )
        assert record["violation"] is True
        assert "failed to execute" in record["details"]
