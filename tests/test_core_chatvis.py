"""Tests for the ChatVis core: tasks, few-shot library, error extraction,
correction prompts, session records and the full assistant loop."""

import json

import pytest

from repro.core import (
    CANONICAL_TASKS,
    ChatVis,
    ChatVisConfig,
    ChatVisResult,
    ExampleLibrary,
    IterationRecord,
    PromptGenerator,
    ScriptGenerator,
    extract_error_messages,
    get_task,
    has_errors,
    prepare_task_data,
)
from repro.core.correction import CorrectionPromptBuilder, request_correction
from repro.core.error_extraction import classify_error, final_error
from repro.core.tasks import task_names
from repro.eval.harness import scaled_prompt
from repro.llm import get_model


class TestTasks:
    def test_five_canonical_tasks(self):
        assert len(CANONICAL_TASKS) == 5
        assert set(task_names()) == {
            "isosurface", "slice_contour", "volume_render", "delaunay", "streamlines",
        }

    def test_get_task_unknown(self):
        with pytest.raises(KeyError):
            get_task("teapot")

    def test_prompts_mention_their_files_and_screenshots(self):
        for task in CANONICAL_TASKS.values():
            for filename in task.data_files:
                assert filename in task.user_prompt
            assert task.screenshot in task.user_prompt
            assert "1920 x 1080" in task.user_prompt

    def test_prepare_task_data_creates_files(self, work_dir):
        created = prepare_task_data("isosurface", work_dir, small=True)
        assert all(path.exists() for path in created)
        # idempotent
        again = prepare_task_data("isosurface", work_dir, small=True)
        assert [p.name for p in again] == [p.name for p in created]

    def test_scaled_prompt_replaces_resolution(self):
        task = get_task("isosurface")
        prompt = scaled_prompt(task, (320, 180))
        assert "320 x 180 pixels" in prompt
        assert "1920" not in prompt


class TestExampleLibrary:
    def test_selection_matches_plan(self):
        library = ExampleLibrary()
        selected = library.select(CANONICAL_TASKS["streamlines"].user_prompt)
        names = {example.name for example in selected}
        assert {"stream_tracer", "tube", "glyph", "render_view"}.issubset(names)
        assert "read_vtk" not in names  # the input is an .ex2 file

    def test_vtk_task_selects_vtk_reader(self):
        library = ExampleLibrary()
        names = {e.name for e in library.select(CANONICAL_TASKS["isosurface"].user_prompt)}
        assert "read_vtk" in names
        assert "read_exodus" not in names

    def test_render_contains_header(self):
        library = ExampleLibrary()
        text = library.render(CANONICAL_TASKS["isosurface"].user_prompt)
        assert text.startswith("Example ParaView code snippets:")
        assert "Contour(" in text

    def test_add_custom_example(self):
        from repro.core.few_shot import Example

        library = ExampleLibrary()
        library.add(Example("custom", ("isosurface",), "custom", "pass"))
        assert "custom" in library.names()


class TestErrorExtraction:
    TRACEBACK = (
        "some ordinary output\n"
        "Traceback (most recent call last):\n"
        '  File "script.py", line 17, in <module>\n'
        "    coneGlyph.Scalars = ['POINTS', 'Temp']\n"
        "AttributeError: 'Glyph' object has no attribute 'Scalars'\n"
        "more output\n"
    )

    def test_extracts_traceback_block(self):
        messages = extract_error_messages(self.TRACEBACK)
        assert len(messages) == 1
        assert "AttributeError" in messages[0]
        assert "line 17" in messages[0]

    def test_has_errors(self):
        assert has_errors(self.TRACEBACK)
        assert not has_errors("everything is fine\nscreenshot saved\n")

    def test_final_error(self):
        error_type, message = final_error(self.TRACEBACK)
        assert error_type == "AttributeError"
        assert "Glyph" in message

    def test_multiple_tracebacks(self):
        output = self.TRACEBACK + "\n" + self.TRACEBACK.replace("Scalars", "Vectors")
        assert len(extract_error_messages(output)) == 2

    def test_standalone_error_line(self):
        assert extract_error_messages("RuntimeError: kaboom") == ["RuntimeError: kaboom"]

    def test_empty_output(self):
        assert extract_error_messages("") == []

    def test_classify(self):
        assert classify_error(self.TRACEBACK) == "hallucinated_attribute"
        assert classify_error("SyntaxError: invalid syntax") == "syntax"
        assert classify_error("NameError: name 'x' is not defined") == "name"
        assert classify_error("") == "none"


class TestPromptsAndCorrection:
    def test_prompt_generator_fallback(self):
        text = PromptGenerator.fallback(CANONICAL_TASKS["delaunay"].user_prompt)
        assert "Delaunay" in text or "delaunay" in text.lower()
        assert text.count("-") >= 4  # bullet list

    def test_script_generator_messages_include_examples(self):
        generator = ScriptGenerator(get_model("gpt-4"))
        messages = generator.build_generation_messages("Read in the file named ml-100.vtk.")
        text = messages[-1].content
        assert "Example ParaView code snippets:" in text
        assert "User request:" in text

    def test_script_generator_can_disable_few_shot(self):
        generator = ScriptGenerator(get_model("gpt-4"), use_few_shot=False)
        text = generator.build_generation_messages("Read the file x.vtk")[-1].content
        assert "Example ParaView code snippets:" not in text

    def test_correction_prompt_contains_script_and_errors(self):
        builder = CorrectionPromptBuilder()
        messages = builder.build("x = 1\n", ["AttributeError: nope"], "user wants a plot")
        text = messages[-1].content
        assert "x = 1" in text
        assert "AttributeError: nope" in text
        assert "fix the code" in text.lower()

    def test_request_correction_returns_code(self):
        script = "from paraview.simple import *\nclip1 = Clip()\nclip1.InsideOut = 1\n"
        errors = [
            "Traceback (most recent call last):\n"
            '  File "script.py", line 3, in <module>\n'
            "    clip1.InsideOut = 1\n"
            "AttributeError: 'Clip' object has no attribute 'InsideOut'"
        ]
        fixed = request_correction(get_model("gpt-4"), script, errors)
        assert "Invert" in fixed


class TestSessionRecords:
    def test_result_serialisation_roundtrip(self, work_dir):
        result = ChatVisResult(user_prompt="p", model="gpt-4-sim")
        result.iterations.append(
            IterationRecord(index=1, script="x=1", success=False, error_type="AttributeError")
        )
        result.iterations.append(IterationRecord(index=2, script="x=2", success=True))
        result.success = True
        path = result.save(work_dir / "session.json")
        loaded = ChatVisResult.load(path)
        assert loaded.n_iterations == 2
        assert loaded.error_history() == ["AttributeError", None]
        assert json.loads(path.read_text())["model"] == "gpt-4-sim"

    def test_summary_mentions_iterations(self):
        result = ChatVisResult(user_prompt="p", model="m")
        assert "0 iteration" in result.summary()


class TestChatVisLoop:
    @pytest.fixture()
    def prepared_dir(self, work_dir):
        for task in CANONICAL_TASKS.values():
            prepare_task_data(task, work_dir, small=True)
        return work_dir

    def test_isosurface_succeeds(self, prepared_dir):
        task = get_task("isosurface")
        assistant = ChatVis("gpt-4", working_dir=prepared_dir)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert result.success
        assert result.screenshots
        assert result.n_iterations >= 1

    def test_delaunay_uses_correction_loop(self, prepared_dir):
        task = get_task("delaunay")
        assistant = ChatVis("gpt-4", working_dir=prepared_dir)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert result.success
        assert result.n_iterations >= 2
        assert result.iterations[0].error_type == "AttributeError"

    def test_correction_disabled_stops_after_first_failure(self, prepared_dir):
        task = get_task("delaunay")
        config = ChatVisConfig(use_error_correction=False)
        assistant = ChatVis("gpt-4", working_dir=prepared_dir, config=config)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert not result.success
        assert result.n_iterations == 1

    def test_max_iterations_respected(self, prepared_dir):
        task = get_task("streamlines")
        config = ChatVisConfig(max_iterations=1)
        assistant = ChatVis("gpt-4", working_dir=prepared_dir, config=config)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert result.n_iterations == 1

    def test_generated_prompt_recorded(self, prepared_dir):
        task = get_task("isosurface")
        assistant = ChatVis("gpt-4", working_dir=prepared_dir)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert "step-by-step" in result.generated_prompt.lower() or "Requirements" in result.generated_prompt

    def test_accepts_llm_instance(self, prepared_dir):
        task = get_task("isosurface")
        assistant = ChatVis(get_model("gpt-4"), working_dir=prepared_dir)
        result = assistant.run(scaled_prompt(task, (160, 120)))
        assert result.model == "gpt-4-sim"
        assert result.success
