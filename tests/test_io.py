"""Unit tests for the io package (PNG, legacy VTK, exodus-like, registry)."""

import numpy as np
import pytest

from repro.datamodel import CellType, ImageData, PolyData, UnstructuredGrid
from repro.io import (
    open_data_file,
    read_exodus,
    read_png,
    read_vtk,
    register_reader,
    supported_extensions,
    write_exodus,
    write_png,
    write_vtk,
)
from repro.io.exodus_like import ExodusParseError
from repro.io.registry import UnsupportedFormatError
from repro.io.vtk_legacy import VtkParseError


class TestPng:
    def test_rgb_roundtrip(self, work_dir):
        image = (np.random.default_rng(0).random((13, 17, 3)) * 255).astype(np.uint8)
        path = work_dir / "img.png"
        write_png(path, image)
        back = read_png(path)
        assert back.shape == image.shape
        assert np.array_equal(back, image)

    def test_rgba_roundtrip(self, work_dir):
        image = (np.random.default_rng(1).random((8, 9, 4)) * 255).astype(np.uint8)
        write_png(work_dir / "img.png", image)
        back = read_png(work_dir / "img.png")
        assert back.shape == (8, 9, 4)
        assert np.array_equal(back, image)

    def test_float_input_converted(self, work_dir):
        image = np.zeros((4, 4, 3))
        image[:, :, 0] = 1.0
        write_png(work_dir / "f.png", image)
        back = read_png(work_dir / "f.png")
        assert back[0, 0, 0] == 255

    def test_grayscale_promoted(self, work_dir):
        image = (np.random.default_rng(2).random((5, 6)) * 255).astype(np.uint8)
        write_png(work_dir / "g.png", image)
        back = read_png(work_dir / "g.png")
        assert back.shape == (5, 6, 3)

    def test_invalid_shape_rejected(self, work_dir):
        with pytest.raises(ValueError):
            write_png(work_dir / "bad.png", np.zeros((3, 3, 5)))

    def test_read_rejects_non_png(self, work_dir):
        path = work_dir / "not.png"
        path.write_bytes(b"definitely not a png")
        with pytest.raises(ValueError):
            read_png(path)

    def test_signature_present(self, work_dir):
        path = write_png(work_dir / "sig.png", np.zeros((2, 2, 3), dtype=np.uint8))
        assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


class TestVtkLegacy:
    def test_image_data_roundtrip(self, work_dir):
        img = ImageData((3, 4, 2), origin=(1, 2, 3), spacing=(0.5, 1.0, 2.0))
        img.add_point_array("var0", np.arange(24, dtype=float))
        img.add_point_array("vec", np.random.default_rng(0).random((24, 3)))
        path = write_vtk(work_dir / "img.vtk", img)
        back = read_vtk(path)
        assert isinstance(back, ImageData)
        assert back.dimensions == (3, 4, 2)
        assert back.origin == (1, 2, 3)
        assert np.allclose(back.point_data["var0"].as_scalar(), np.arange(24))
        assert back.point_data["vec"].n_components == 3

    def test_unstructured_roundtrip(self, work_dir):
        grid = UnstructuredGrid(np.random.default_rng(0).random((5, 3)))
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        grid.add_cell(CellType.VERTEX, (4,))
        grid.add_point_array("t", np.arange(5, dtype=float))
        path = write_vtk(work_dir / "g.vtk", grid)
        back = read_vtk(path)
        assert isinstance(back, UnstructuredGrid)
        assert back.n_cells == 2
        assert back.cell(0)[0] == CellType.TETRA
        assert np.allclose(back.point_data["t"].as_scalar(), np.arange(5))

    def test_polydata_roundtrip(self, work_dir):
        poly = PolyData(
            points=np.random.default_rng(1).random((4, 3)),
            triangles=[[0, 1, 2]],
            lines=[[0, 3]],
            verts=[2],
        )
        poly.add_point_array("s", [0.0, 1.0, 2.0, 3.0])
        path = write_vtk(work_dir / "p.vtk", poly)
        back = read_vtk(path)
        assert isinstance(back, PolyData)
        assert back.n_triangles == 1
        assert back.n_lines == 1
        assert back.n_verts == 1

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            read_vtk("/nonexistent/file.vtk")

    def test_bad_header(self, work_dir):
        path = work_dir / "bad.vtk"
        path.write_text("not a vtk file\nat all\nASCII\nDATASET STRUCTURED_POINTS\n")
        with pytest.raises(VtkParseError):
            read_vtk(path)

    def test_binary_rejected(self, work_dir):
        path = work_dir / "bin.vtk"
        path.write_text("# vtk DataFile Version 3.0\nt\nBINARY\nDATASET STRUCTURED_POINTS\n")
        with pytest.raises(VtkParseError):
            read_vtk(path)

    def test_point_data_count_mismatch(self, work_dir):
        path = work_dir / "mismatch.vtk"
        path.write_text(
            "# vtk DataFile Version 3.0\nt\nASCII\nDATASET STRUCTURED_POINTS\n"
            "DIMENSIONS 2 2 1\nORIGIN 0 0 0\nSPACING 1 1 1\n"
            "POINT_DATA 3\nSCALARS f float 1\nLOOKUP_TABLE default\n1 2 3\n"
        )
        with pytest.raises(VtkParseError):
            read_vtk(path)


class TestExodusLike:
    def test_roundtrip_with_blocks_and_variables(self, work_dir):
        grid = UnstructuredGrid(np.random.default_rng(0).random((8, 3)))
        grid.add_cell(CellType.HEXAHEDRON, tuple(range(8)))
        grid.add_point_array("Temp", np.arange(8, dtype=float))
        grid.add_point_array("V", np.random.default_rng(1).random((8, 3)))
        path = write_exodus(work_dir / "g.ex2", grid)
        back = read_exodus(path)
        assert back.n_points == 8
        assert back.n_cells == 1
        assert np.allclose(back.point_data["Temp"].as_scalar(), np.arange(8))
        assert back.point_data["V"].n_components == 3

    def test_point_cloud_promoted_to_vertices(self, work_dir):
        grid = UnstructuredGrid(np.random.default_rng(2).random((6, 3)))
        path = write_exodus(work_dir / "pts.ex2", grid)
        back = read_exodus(path)
        assert back.n_cells == 6
        assert all(t == CellType.VERTEX for t in back.cell_types())

    def test_invalid_file(self, work_dir):
        path = work_dir / "bad.ex2"
        path.write_text("garbage")
        with pytest.raises(ExodusParseError):
            read_exodus(path)

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            read_exodus("/nonexistent/file.ex2")

    def test_coordinates_preserved(self, work_dir):
        points = np.array([[0.5, -1.25, 3.0], [1, 2, 3], [4, 5, 6], [0, 0, 0]])
        grid = UnstructuredGrid(points)
        write_exodus(work_dir / "c.ex2", grid)
        back = read_exodus(work_dir / "c.ex2")
        assert np.allclose(back.points, points)


class TestRegistry:
    def test_supported_extensions(self):
        exts = supported_extensions()
        assert ".vtk" in exts and ".ex2" in exts

    def test_open_data_file_dispatch(self, work_dir):
        img = ImageData((2, 2, 2))
        img.add_point_array("f", np.zeros(8))
        write_vtk(work_dir / "a.vtk", img)
        assert isinstance(open_data_file(work_dir / "a.vtk"), ImageData)

    def test_unsupported_extension(self, work_dir):
        with pytest.raises(UnsupportedFormatError):
            open_data_file(work_dir / "file.xyz")

    def test_register_custom_reader(self, work_dir):
        sentinel = ImageData((2, 2, 2))
        register_reader(".custom", lambda path: sentinel)
        path = work_dir / "x.custom"
        path.write_text("")
        assert open_data_file(path) is sentinel
