"""Tests for the simulated-LLM substrate (parser, codegen, errors, models)."""

import numpy as np
import pytest

from repro.core.tasks import CANONICAL_TASKS
from repro.llm import (
    ChatMessage,
    ModelProfile,
    ParaViewKnowledgeBase,
    available_models,
    count_tokens,
    get_model,
    parse_request,
)
from repro.llm.base import Usage, assistant, system, user
from repro.llm.codegen import canonical_script, extract_code_block
from repro.llm.errors import (
    inject_attribute_hallucination,
    inject_missing_stage,
    inject_syntax_error,
    inject_use_before_create,
    repair_script,
)
from repro.llm.models import FEW_SHOT_MARKER
from repro.llm.openai_compat import OpenAICompatibleClient
from repro.llm.tokenizer import SimpleTokenizer


class TestBaseTypes:
    def test_chat_message_roles(self):
        assert user("hi").role == "user"
        assert system("x").role == "system"
        assert assistant("y").role == "assistant"
        with pytest.raises(ValueError):
            ChatMessage("robot", "hi")

    def test_usage_addition(self):
        total = Usage(10, 5) + Usage(1, 2)
        assert total.total_tokens == 18

    def test_tokenizer_counts(self):
        tok = SimpleTokenizer()
        assert tok.count("Show(contour, renderView)") >= 5
        assert count_tokens("") == 0
        # long identifiers count as several sub-word tokens
        assert tok.count("RescaleTransferFunctionToDataRange") > 3


class TestNLParser:
    @pytest.mark.parametrize("task_name", list(CANONICAL_TASKS))
    def test_canonical_prompts_parse(self, task_name):
        task = CANONICAL_TASKS[task_name]
        plan = parse_request(task.user_prompt)
        assert plan.has("read_file")
        assert plan.has("screenshot")
        assert plan.screenshot_filename() == task.screenshot
        assert plan.resolution() == (1920, 1080)

    def test_isosurface_params(self):
        plan = parse_request(CANONICAL_TASKS["isosurface"].user_prompt)
        op = plan.first("isosurface")
        assert op.params["array"] == "var0"
        assert op.params["value"] == 0.5

    def test_slice_contour_params(self):
        plan = parse_request(CANONICAL_TASKS["slice_contour"].user_prompt)
        assert plan.first("slice").params["normal_axis"] == "x"
        assert plan.first("contour").params["value"] == 0.5
        assert plan.first("color").params["color_name"] == "red"
        assert plan.first("view_direction").params["direction"] == "+x"

    def test_delaunay_params(self):
        plan = parse_request(CANONICAL_TASKS["delaunay"].user_prompt)
        assert plan.has("delaunay")
        clip = plan.first("clip")
        assert clip.params["normal_axis"] == "x"
        assert clip.params["keep_side"] == "-"
        assert plan.has("wireframe")
        assert plan.first("view_direction").params["direction"] == "isometric"

    def test_streamline_params_case_preserved(self):
        plan = parse_request(CANONICAL_TASKS["streamlines"].user_prompt)
        assert plan.first("streamlines").params["array"] == "V"
        assert plan.first("color_by").params["array"] == "Temp"
        assert plan.has("tube")
        assert plan.first("glyph").params["glyph_type"] == "cone"

    def test_ordering_screenshot_last(self):
        plan = parse_request(CANONICAL_TASKS["streamlines"].user_prompt)
        assert plan.kinds()[-1] == "screenshot"
        assert plan.kinds()[-2] == "view_size"

    def test_steps_are_english(self):
        plan = parse_request(CANONICAL_TASKS["isosurface"].user_prompt)
        steps = plan.steps()
        assert any("isosurface" in s.lower() for s in steps)

    def test_empty_request(self):
        plan = parse_request("")
        assert len(plan) == 0
        assert plan.resolution() == (1920, 1080)

    def test_unquoted_filenames(self):
        plan = parse_request("Read in the file named data.vtk and show it.")
        assert plan.filenames() == ["data.vtk"]


class TestCodegen:
    def test_extract_code_block_fenced(self):
        text = "Here you go\n```python\nx = 1\n```\nenjoy"
        assert extract_code_block(text) == "x = 1\n"

    def test_extract_code_block_plain(self):
        assert extract_code_block("x = 2").strip() == "x = 2"

    @pytest.mark.parametrize("task_name", list(CANONICAL_TASKS))
    def test_canonical_scripts_compile(self, task_name):
        import ast

        draft = canonical_script(CANONICAL_TASKS[task_name].user_prompt)
        ast.parse(draft.text())

    def test_canonical_script_mentions_operations(self):
        text = canonical_script(CANONICAL_TASKS["streamlines"].user_prompt).text()
        for token in ("StreamTracer", "Tube", "Glyph", "ColorBy", "SaveScreenshot", "'Temp'"):
            assert token in text

    def test_canonical_script_isosurface_value(self):
        text = canonical_script(CANONICAL_TASKS["isosurface"].user_prompt).text()
        assert "Isosurfaces = [0.5]" in text
        assert "LegacyVTKReader" in text

    def test_canonical_script_clip_invert(self):
        text = canonical_script(CANONICAL_TASKS["delaunay"].user_prompt).text()
        assert "Delaunay3D" in text
        assert "Invert = 1" in text
        assert "Wireframe" in text

    def test_volume_script_sets_volume_representation(self):
        text = canonical_script(CANONICAL_TASKS["volume_render"].user_prompt).text()
        assert "SetRepresentationType('Volume')" in text
        assert "ApplyIsometricView" in text


class TestErrorInjectionAndRepair:
    def _draft(self, task="streamlines"):
        return canonical_script(CANONICAL_TASKS[task].user_prompt)

    def test_attribute_hallucination_changes_script(self):
        rng = np.random.default_rng(0)
        draft = self._draft()
        before = draft.text()
        bad = inject_attribute_hallucination(draft, rng, stage="glyph")
        assert bad is not None
        assert draft.text() != before

    def test_syntax_error_breaks_parse(self):
        import ast

        rng = np.random.default_rng(0)
        draft = self._draft("isosurface")
        inject_syntax_error(draft, rng)
        with pytest.raises(SyntaxError):
            ast.parse(draft.text())

    def test_missing_stage_removes_lines(self):
        draft = canonical_script(CANONICAL_TASKS["volume_render"].user_prompt)
        removed = inject_missing_stage(draft, "volume")
        assert removed > 0
        assert "SetRepresentationType('Volume')" not in draft.text()

    def test_use_before_create(self):
        rng = np.random.default_rng(0)
        draft = self._draft()
        inject_use_before_create(draft, rng)
        text = draft.text()
        assert "'RenderView1'" in text
        assert "GetActiveViewOrCreate" not in text

    def test_repair_replaces_hallucinated_attribute(self):
        rng = np.random.default_rng(0)
        script = "from paraview.simple import *\nclip1 = Clip()\nclip1.InsideOut = 1\n"
        error = (
            "Traceback (most recent call last):\n"
            '  File "script.py", line 3, in <module>\n'
            "    clip1.InsideOut = 1\n"
            "AttributeError: 'Clip' object has no attribute 'InsideOut'"
        )
        outcome = repair_script(script, error, rng, skill=1.0)
        assert outcome.changed
        assert "InsideOut" not in outcome.script
        assert "clip1.Invert = 1" in outcome.script

    def test_repair_removes_unknown_function(self):
        rng = np.random.default_rng(0)
        script = "from paraview.simple import *\nlut = GetLookupTableForArray('Temp', 1)\n"
        error = (
            "Traceback (most recent call last):\n"
            '  File "script.py", line 2, in <module>\n'
            "    lut = GetLookupTableForArray('Temp', 1)\n"
            "NameError: name 'GetLookupTableForArray' is not defined"
        )
        outcome = repair_script(script, error, rng, skill=1.0)
        assert "GetLookupTableForArray" not in outcome.script

    def test_repair_fixes_view_name_string(self):
        rng = np.random.default_rng(0)
        script = (
            "from paraview.simple import *\n"
            "reader = Wavelet()\n"
            "display = Show(reader, 'RenderView1')\n"
        )
        error = (
            "Traceback (most recent call last):\n"
            '  File "script.py", line 3, in <module>\n'
            "    display = Show(reader, 'RenderView1')\n"
            "PipelineError: expected a RenderView (or None), got 'str'; create the view "
            "with CreateView/GetActiveViewOrCreate before using it"
        )
        outcome = repair_script(script, error, rng, skill=1.0)
        assert "GetActiveViewOrCreate" in outcome.script
        assert "'RenderView1'" not in outcome.script

    def test_repair_zero_skill_rarely_fixes(self):
        script = "from paraview.simple import *\nclip1 = Clip()\nclip1.InsideOut = 1\n"
        error = "AttributeError: 'Clip' object has no attribute 'InsideOut'"
        outcome = repair_script(script, error, np.random.default_rng(3), skill=0.0)
        assert "Invert" not in outcome.script


class TestKnowledgeBase:
    def test_functions_introspected(self):
        kb = ParaViewKnowledgeBase()
        assert kb.has_function("SaveScreenshot")
        assert kb.has_function("ColorBy")
        assert not kb.has_function("GetLookupTableForArray")

    def test_proxy_properties(self):
        kb = ParaViewKnowledgeBase()
        assert kb.is_valid_property("Contour", "Isosurfaces")
        assert not kb.is_valid_property("Contour", "ContourValues")
        assert kb.is_valid_property("RenderView", "CameraPosition")
        assert not kb.is_valid_property("RenderView", "ViewUp")

    def test_known_hallucinations(self):
        kb = ParaViewKnowledgeBase()
        assert kb.is_known_hallucination("Glyph", "Scalars")
        assert not kb.is_known_hallucination("Glyph", "OrientationArray")


class TestSimulatedModels:
    def test_registry_and_aliases(self):
        assert "gpt-4-sim" in available_models()
        assert get_model("gpt-4").model_name == "gpt-4-sim"
        assert get_model("llama3:8b").model_name == "llama-3-8b-sim"
        with pytest.raises(KeyError):
            get_model("gpt-99")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelProfile(name="x", display_name="x", api_knowledge=2.0)

    def test_deterministic_generation(self):
        prompt = CANONICAL_TASKS["streamlines"].user_prompt
        model = get_model("gpt-4")
        a = model.complete([user(prompt)]).text
        b = model.complete([user(prompt)]).text
        assert a == b

    def test_usage_reported(self):
        model = get_model("gpt-4")
        response = model.complete([user(CANONICAL_TASKS["isosurface"].user_prompt)])
        assert response.usage.prompt_tokens > 0
        assert response.usage.completion_tokens > 0

    def test_gpt4_unassisted_isosurface_is_clean_python(self):
        import ast

        model = get_model("gpt-4")
        text = model.complete([user(CANONICAL_TASKS["isosurface"].user_prompt)]).text
        ast.parse(extract_code_block(text))

    def test_gpt4_unassisted_streamlines_hallucinates(self):
        model = get_model("gpt-4")
        text = model.complete([user(CANONICAL_TASKS["streamlines"].user_prompt)]).text
        script = extract_code_block(text)
        assert ".Scalars" in script or ".Vectors" in script or "'RenderView1'" in script

    def test_gpt4_unassisted_volume_omits_volume_rendering(self):
        model = get_model("gpt-4")
        text = model.complete([user(CANONICAL_TASKS["volume_render"].user_prompt)]).text
        assert "SetRepresentationType('Volume')" not in extract_code_block(text)

    @pytest.mark.parametrize("name", ["gpt-3.5-turbo", "llama3:8b", "codellama:7b", "codegemma"])
    def test_weak_models_produce_broken_scripts(self, name):
        import ast

        model = get_model(name)
        text = model.complete([user(CANONICAL_TASKS["isosurface"].user_prompt)]).text
        script = extract_code_block(text)
        with pytest.raises(SyntaxError):
            ast.parse(script)

    def test_assisted_generation_is_cleaner(self):
        import ast

        model = get_model("gpt-4")
        prompt = (
            "User request:\n" + CANONICAL_TASKS["streamlines"].user_prompt + "\n\n"
            + FEW_SHOT_MARKER + "\n# example\ncontour = Contour(Input=reader)\n"
        )
        script = extract_code_block(model.complete([user(prompt)]).text)
        ast.parse(script)  # assisted frontier generations always parse

    def test_prompt_rewrite_response(self):
        from repro.core.prompt_generation import PromptGenerator

        model = get_model("gpt-4")
        generator = PromptGenerator(model)
        rewritten = generator.generate(CANONICAL_TASKS["slice_contour"].user_prompt)
        assert "step-by-step" in rewritten.lower() or "Requirements" in rewritten
        assert "contour" in rewritten.lower()

    def test_openai_compatible_adapter(self):
        client = OpenAICompatibleClient()
        out = client.chat.completions.create(
            model="gpt-4",
            messages=[{"role": "user", "content": CANONICAL_TASKS["isosurface"].user_prompt}],
        )
        assert out.choices[0].message.role == "assistant"
        assert "paraview" in out.choices[0].message.content.lower()
        assert out.usage.total_tokens > 0
