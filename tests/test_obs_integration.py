"""Cross-layer integration tests for the observability subsystem.

The unit tests (``test_obs.py``) pin the primitives; these pin the
*instrumentation*: engine node spans tag cache hits, failing nodes are
timed and error-flagged, thread and process suite runs land on identical
metric totals (the process path shipping worker span buffers and metric
snapshot deltas back through the batch-result channel), a resumed run
never double-counts, the cache-corruption discard is logged, the suite
report grows its node hit-rate column, and the CLI round-trips
``--trace`` → ``repro obs summary/top/export`` without clobbering the
trace it reads.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import configure_shared_cache
from repro.engine.cache import CACHE_DIR_ENV_VAR, DiskCache
from repro.obs import (
    METRICS,
    Tracer,
    disable_tracing,
    enable_tracing,
    read_trace,
    write_trace,
)
from repro.pvsim import simple, state
from repro.pvsim.errors import PipelineError
from repro.scenarios import SuiteRunner, SuiteStore, canonical_scenarios, generate_scenarios
from repro.scenarios.report import load_report


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    """Hermetic runs: no env cache root, fresh session, obs off and empty."""
    monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
    state.reset_session()
    disable_tracing()
    METRICS.reset()
    yield
    state.reset_session()
    configure_shared_cache(None)
    disable_tracing()
    METRICS.reset()


# --------------------------------------------------------------------------- #
# engine instrumentation
# --------------------------------------------------------------------------- #
class TestEngineSpans:
    def test_node_spans_tag_compute_vs_cache_hit(self):
        tracer = enable_tracing(Tracer())
        sphere = simple.Sphere(Radius=1.0)
        sphere.get_output()
        sphere.get_output()  # warm: memory-cache hit, no recompute
        node_spans = [s for s in tracer.spans() if s.category == "engine.node"]
        assert node_spans, "engine nodes must be traced"
        computed = [s for s in node_spans if s.attrs.get("cached") is False]
        hits = [s for s in node_spans if s.attrs.get("cached") is True]
        assert len(computed) == 1 and len(hits) == 1
        assert hits[0].duration <= computed[0].duration
        # the guarded metric sites fired too
        snap = METRICS.snapshot()
        assert snap.counter_total("cache_ops_total", tier="memory", op="hit") >= 1

    def test_failing_node_span_is_errored_and_exception_is_timed(self):
        tracer = enable_tracing(Tracer())
        sphere = simple.Sphere(Radius=1.25)
        contour = simple.Contour(registrationName="badContour", Input=sphere, Isosurfaces=[0.5])
        with pytest.raises(PipelineError) as excinfo:
            contour.get_output()
        assert isinstance(excinfo.value.elapsed, float)
        assert excinfo.value.elapsed >= 0.0
        errored = [s for s in tracer.spans() if s.status == "error"]
        assert errored, "the failing node must leave an errored span"
        assert errored[0].category == "engine.node"
        assert errored[0].error_type and "badContour" in (errored[0].error_message or "")

    def test_untraced_run_records_no_spans_or_metrics(self):
        sphere = simple.Sphere(Radius=0.75)
        sphere.get_output()
        assert not METRICS.snapshot()


# --------------------------------------------------------------------------- #
# cache corruption logging
# --------------------------------------------------------------------------- #
class TestCacheLogging:
    def test_corrupt_entry_discard_is_logged_and_counted(self, tmp_path, caplog, monkeypatch):
        # an earlier CLI test may have run logging_setup, which parks a
        # handler on the "repro" logger and stops propagation — caplog's
        # root handler would never see the record; neutralize for this test
        repro_logger = logging.getLogger("repro")
        monkeypatch.setattr(repro_logger, "propagate", True)
        monkeypatch.setattr(repro_logger, "handlers", [])
        cache = DiskCache(tmp_path)
        cache.put("deadbeef", {"some": "value"})
        entry = next(tmp_path.rglob(f"*{DiskCache.ENTRY_SUFFIX}"))
        entry.write_bytes(b"scribble")
        enable_tracing(Tracer())
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            found, _ = cache.get("deadbeef")
        assert not found
        assert any("discarding corrupt cache entry" in r.message for r in caplog.records)
        snap = METRICS.snapshot()
        assert snap.counter_total("cache_ops_total", tier="disk", op="corruption") == 1.0


# --------------------------------------------------------------------------- #
# suite runs: thread vs process, merge determinism, resume
# --------------------------------------------------------------------------- #
def _canonical_runner(root: Path, **kwargs) -> SuiteRunner:
    return SuiteRunner(
        canonical_scenarios(),
        methods=("gpt-4",),
        working_dir=root / "work",
        store=root / "results.jsonl",
        **kwargs,
    )


def _obs_totals():
    snap = METRICS.snapshot()
    return {
        "llm_calls": snap.counter_total("llm_calls_total"),
        "memory_ops": snap.counter_total("cache_ops_total", tier="memory"),
        "memory_hits": snap.counter_total("cache_ops_total", tier="memory", op="hit"),
        "disk_ops": snap.counter_total("cache_ops_total", tier="disk"),
    }


class TestExecutorParity:
    def test_thread_and_process_agree_and_merge_is_byte_deterministic(self, tmp_path):
        from repro.verify.pipelines import isolated_engine_cache

        # --- thread run (cold private cache: other tests must not pre-warm
        # the shared engine tier, or downstream hits skip upstream lookups) ---
        thread_tracer = enable_tracing(Tracer())
        with isolated_engine_cache():
            summary = _canonical_runner(tmp_path / "t").run()
        assert not summary.failures
        thread_totals = _obs_totals()
        thread_spans = disable_tracing().drain()
        thread_counts = {
            cat: sum(1 for s in thread_spans if s.category == cat)
            for cat in ("engine.node", "suite.cell", "batch.job")
        }
        assert thread_totals["llm_calls"] == len(canonical_scenarios())

        # --- process run (fresh registry/session, workers ship obs back) ---
        state.reset_session()
        METRICS.reset()
        process_tracer = enable_tracing(Tracer())
        summary = _canonical_runner(
            tmp_path / "p",
            executor="process",
            max_workers=2,
            cache_dir=tmp_path / "pcache",
        ).run()
        assert not summary.failures
        process_totals = _obs_totals()
        process_spans = disable_tracing().drain()

        # metric totals are identical under both executors ...
        assert process_totals["llm_calls"] == thread_totals["llm_calls"]
        assert process_totals["memory_ops"] == thread_totals["memory_ops"]
        assert process_totals["memory_hits"] == thread_totals["memory_hits"]
        # ... and the span population matches category-for-category
        process_counts = {
            cat: sum(1 for s in process_spans if s.category == cat)
            for cat in ("engine.node", "suite.cell", "batch.job")
        }
        assert process_counts == thread_counts

        # worker buffers really crossed the process boundary
        assert len({s.pid for s in process_spans}) >= 2

        # merged export is byte-deterministic w.r.t. arrival order
        fwd = Tracer()
        fwd.extend_serialized(s.to_dict() for s in process_spans)
        rev = Tracer()
        rev.extend_serialized(s.to_dict() for s in reversed(process_spans))
        write_trace(tmp_path / "fwd.jsonl", fwd.drain(), metrics=METRICS.snapshot().as_dict())
        write_trace(tmp_path / "rev.jsonl", rev.drain(), metrics=METRICS.snapshot().as_dict())
        assert (tmp_path / "fwd.jsonl").read_bytes() == (tmp_path / "rev.jsonl").read_bytes()


class TestResumeAccounting:
    def test_killed_run_resumes_without_double_counting(self, tmp_path):
        def small_suite():
            return SuiteRunner(
                generate_scenarios(limit=4),
                methods=("gpt-4",),
                working_dir=tmp_path / "work",
                store=tmp_path / "results.jsonl",
            )

        enable_tracing(Tracer())
        small_suite().run()
        cold_calls = METRICS.snapshot().counter_total("llm_calls_total")
        assert cold_calls == 4.0

        # simulate a kill mid-append: two cells lost, the last torn mid-write
        store_path = tmp_path / "results.jsonl"
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        METRICS.reset()
        resumed = small_suite().run()
        assert resumed.executed == 2 and resumed.skipped == 2
        # only the re-executed cells dispatched — reused records add nothing
        assert METRICS.snapshot().counter_total("llm_calls_total") == 2.0
        assert len(SuiteStore(store_path).load()) == 4

        METRICS.reset()
        warm = small_suite().run()
        assert warm.executed == 0
        assert METRICS.snapshot().counter_total("llm_calls_total") == 0.0

    def test_fault_killed_cell_resumes_without_double_counting(self, tmp_path):
        """A cell killed by an injected fault leaves a structured failure
        record; the resume re-runs exactly that cell — never a finished one —
        and the obs metrics account each cell's dispatch exactly once."""
        from repro.faults import FaultPlan, FaultSpec, disable_faults, enable_faults

        scenarios = generate_scenarios(limit=4)
        doomed = f"gpt-4/{scenarios[1].name}"
        store_path = tmp_path / "results.jsonl"

        def small_suite():
            return SuiteRunner(
                scenarios,
                methods=("gpt-4",),
                working_dir=tmp_path / "work",
                store=store_path,
            )

        enable_tracing(Tracer())
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(
                        kind="exception",
                        site="batch.job",
                        match=doomed,
                        times=[0],
                        retryable=False,
                    )
                ]
            )
        )
        try:
            summary = small_suite().run()
        finally:
            disable_faults()
        assert summary.executed == 3
        assert [name for name, _ in summary.failures] == [doomed]
        # the fault fired before the cell dispatched: only healthy cells called
        assert METRICS.snapshot().counter_total("llm_calls_total") == 3.0
        loaded = SuiteStore(store_path).load()
        assert len(loaded) == 4
        failed = [r for r in loaded.values() if r.get("failed")]
        assert len(failed) == 1 and failed[0]["job"] == doomed
        assert failed[0]["error_type"] == "InjectedFaultError"

        # resume (faults off): exactly the dead cell re-runs, once
        METRICS.reset()
        resumed = small_suite().run()
        assert resumed.executed == 1 and resumed.skipped == 3
        assert not resumed.failures
        assert METRICS.snapshot().counter_total("llm_calls_total") == 1.0
        final = SuiteStore(store_path).load()
        assert len(final) == 4
        assert not any(r.get("failed") for r in final.values())

        # a third run touches nothing — no cell is ever double-counted
        METRICS.reset()
        warm = small_suite().run()
        assert warm.executed == 0
        assert METRICS.snapshot().counter_total("llm_calls_total") == 0.0


# --------------------------------------------------------------------------- #
# per-cell record metrics → the report's hit-rate column
# --------------------------------------------------------------------------- #
class TestReportHitRate:
    def test_records_carry_metrics_and_report_renders_hit_rate(self, tmp_path):
        runner = SuiteRunner(
            generate_scenarios(limit=2),
            methods=("gpt-4",),
            working_dir=tmp_path / "work",
            store=tmp_path / "results.jsonl",
        )
        summary = runner.run()
        for record in summary.records:
            metrics = record["metrics"]
            assert set(metrics) >= {"nodes_executed", "nodes_cached", "llm_calls"}
            # variant cells may serve entirely from cache; consulted is what counts
            assert metrics["nodes_executed"] + metrics["nodes_cached"] >= 1
        report = load_report(tmp_path / "results.jsonl")
        markdown = report.to_markdown()
        assert "node hit-rate" in markdown
        assert "%" in markdown.split("node hit-rate", 1)[1]
        spend = report.to_json()["spend"]["gpt-4"]
        assert "node_hit_rate" in spend


# --------------------------------------------------------------------------- #
# the CLI round-trip
# --------------------------------------------------------------------------- #
class TestCliTraceRoundTrip:
    def test_trace_run_then_summary_top_export(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "suite",
                    "run",
                    str(tmp_path / "work"),
                    "--limit",
                    "2",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote trace:" in out
        trace = read_trace(trace_path)
        assert trace.spans and trace.metrics
        assert trace.meta["command"].startswith("repro suite run")
        # tracing is a per-invocation affair: the CLI uninstalled it on exit
        from repro.obs import tracing_enabled

        assert not tracing_enabled()

        before = trace_path.read_bytes()
        assert main(["obs", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall-clock" in out and "suite.cell" in out
        assert "cache hit-rate by tier" in out
        # reading a trace must never rewrite it
        assert trace_path.read_bytes() == before

        assert main(["obs", "summary", str(trace_path), "--json"]) == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["span_count"] == len(trace.spans)

        assert main(["obs", "top", str(trace_path), "-n", "3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) >= 3

        chrome = tmp_path / "trace.chrome.json"
        assert main(["obs", "export", str(trace_path), str(chrome)]) == 0
        capsys.readouterr()
        doc = json.loads(chrome.read_text())
        assert len(doc["traceEvents"]) == len(trace.spans)
        assert trace_path.read_bytes() == before

    def test_summary_on_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) != 0
        assert "no trace" in capsys.readouterr().out
