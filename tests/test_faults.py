"""Unit tests for the fault-injection subsystem (``repro.faults``).

Pins the plan layer (validation, JSON round-trips), the determinism of the
seeded firing decision (same plan → same decisions in any process), the
per-kind injection behavior, and the zero-leak contract: with no plan
installed — or an installed plan whose specs never match — nothing fires,
no metrics move, and the site hooks reduce to one attribute load.
"""

from __future__ import annotations

import errno
import json
import logging
import time

import pytest

from repro.faults import (
    CORRUPT_WRITE,
    FAULT_KINDS,
    FAULT_STATE,
    FaultPlan,
    FaultPlanError,
    FaultRuntime,
    FaultSpec,
    InjectedFaultError,
    TransientFaultError,
    checkpoint,
    disable_faults,
    enable_faults,
    faults_enabled,
    job_scope,
)
from repro.llm.errors import TransientAPIError
from repro.obs import METRICS


@pytest.fixture(autouse=True)
def _no_installed_plan():
    """Hermetic: no plan before or after, metrics registry empty."""
    disable_faults()
    METRICS.reset()
    yield
    disable_faults()
    METRICS.reset()


# --------------------------------------------------------------------------- #
# plan validation & round-trips
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="gremlin", site="batch.job", probability=1.0)

    def test_empty_site_rejected(self):
        with pytest.raises(FaultPlanError, match="non-empty site"):
            FaultSpec(kind="exception", site="", probability=1.0)

    def test_spec_without_any_trigger_rejected(self):
        with pytest.raises(FaultPlanError, match="never fires"):
            FaultSpec(kind="exception", site="batch.job")

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_probability_out_of_range_rejected(self, p):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(kind="exception", site="batch.job", probability=p)

    def test_nonpositive_hang_rejected(self):
        with pytest.raises(FaultPlanError, match="seconds"):
            FaultSpec(kind="hang", site="batch.job", probability=1.0, seconds=0.0)

    def test_json_lists_normalize_to_tuples(self):
        spec = FaultSpec(kind="exception", site="batch.job", times=[0, 2], attempts=[1])
        assert spec.times == (0, 2)
        assert spec.attempts == (1,)

    def test_dict_round_trip_is_lossless(self):
        spec = FaultSpec(
            kind="hang",
            site="batch.job",
            match="gpt-4/*",
            probability=0.25,
            seconds=0.5,
            message="stuck",
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec field"):
            FaultSpec.from_dict({"kind": "exception", "site": "s", "probability": 1.0, "when": "now"})

    def test_from_dict_requires_kind_and_site(self):
        with pytest.raises(FaultPlanError, match="'kind' and 'site'"):
            FaultSpec.from_dict({"probability": 1.0})


class TestFaultPlan:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=7,
            faults=[
                FaultSpec(kind="worker-kill", site="batch.worker", probability=0.1),
                FaultSpec(kind="exception", site="engine.node", match="Contour*", times=[0]),
            ],
        )

    def test_json_file_round_trip(self, tmp_path):
        plan = self._plan()
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        # and the on-disk form is plain JSON anybody can write by hand
        payload = json.loads(path.read_text())
        assert payload["seed"] == 7
        assert {f["kind"] for f in payload["faults"]} == {"worker-kill", "exception"}

    def test_dict_specs_are_coerced(self):
        plan = FaultPlan(seed=1, faults=[{"kind": "hang", "site": "batch.job", "probability": 0.5}])
        assert isinstance(plan.faults[0], FaultSpec)

    def test_load_missing_file_raises_plan_error(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot load fault plan"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_load_bad_json_raises_plan_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="cannot load fault plan"):
            FaultPlan.load(path)

    def test_from_dict_rejects_unknown_fields_and_shapes(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan field"):
            FaultPlan.from_dict({"seed": 0, "faults": [], "extra": 1})
        with pytest.raises(FaultPlanError, match="must be an array"):
            FaultPlan.from_dict({"faults": {"kind": "hang"}})
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_dict([1, 2])

    def test_unit_is_deterministic_and_seed_sensitive(self):
        plan = self._plan()
        draw = plan.unit(0, "batch.worker", "cell", "cell#0", 0)
        assert draw == plan.unit(0, "batch.worker", "cell", "cell#0", 0)
        assert 0.0 <= draw < 1.0
        assert draw != FaultPlan(seed=8).unit(0, "batch.worker", "cell", "cell#0", 0)

    def test_describe_names_every_spec(self):
        text = self._plan().describe()
        assert "worker-kill" in text and "engine.node:Contour*" in text and "seed 7" in text


# --------------------------------------------------------------------------- #
# firing decisions
# --------------------------------------------------------------------------- #
class TestDecisions:
    def test_two_runtimes_same_plan_agree_everywhere(self):
        plan = FaultPlan(
            seed=3,
            faults=[FaultSpec(kind="exception", site="batch.job", probability=0.5)],
        )
        a, b = FaultRuntime(plan), FaultRuntime(plan)
        for key in ("j0", "j1", "j2", "j3", "j4", "j5", "j6", "j7"):
            fired_a = fired_b = False
            try:
                a.checkpoint("batch.job", key)
            except TransientFaultError:
                fired_a = True
            try:
                b.checkpoint("batch.job", key)
            except TransientFaultError:
                fired_b = True
            assert fired_a == fired_b

    def test_probability_extremes(self):
        always = FaultRuntime(
            FaultPlan(faults=[FaultSpec(kind="exception", site="s", probability=1.0)])
        )
        never = FaultRuntime(
            FaultPlan(faults=[FaultSpec(kind="exception", site="s", probability=0.0)])
        )
        with pytest.raises(TransientFaultError):
            always.checkpoint("s", "k")
        assert never.checkpoint("s", "k") is None
        assert never.fired_total() == 0

    def test_times_counts_occurrences_per_epoch(self):
        runtime = FaultRuntime(
            FaultPlan(faults=[FaultSpec(kind="exception", site="s", times=[1])])
        )
        assert runtime.checkpoint("s", "k") is None  # occurrence 0
        with pytest.raises(TransientFaultError):
            runtime.checkpoint("s", "k")  # occurrence 1
        assert runtime.checkpoint("s", "k") is None  # occurrence 2
        # a new epoch restarts the occurrence counter
        with job_scope("job-b", 0):
            assert runtime.checkpoint("s", "k") is None
            with pytest.raises(TransientFaultError):
                runtime.checkpoint("s", "k")

    def test_attempts_condition_makes_transients_cross_process_safe(self):
        runtime = FaultRuntime(
            FaultPlan(faults=[FaultSpec(kind="exception", site="s", times=[0], attempts=[0])])
        )
        with job_scope("cell", 0):
            with pytest.raises(TransientFaultError):
                runtime.checkpoint("s", "cell")
        # the retry runs under attempt 1 — even a fresh runtime (a new
        # worker process) must not fire again
        fresh = FaultRuntime(runtime.plan)
        with job_scope("cell", 1):
            assert fresh.checkpoint("s", "cell") is None

    def test_match_glob_filters_keys(self):
        runtime = FaultRuntime(
            FaultPlan(faults=[FaultSpec(kind="exception", site="s", match="gpt-4/*", times=[0])])
        )
        assert runtime.checkpoint("s", "claude/scn") is None
        with pytest.raises(TransientFaultError):
            runtime.checkpoint("s", "gpt-4/scn")

    def test_first_matching_spec_wins(self):
        runtime = FaultRuntime(
            FaultPlan(
                faults=[
                    FaultSpec(kind="cache-corrupt", site="s", times=[0]),
                    FaultSpec(kind="exception", site="s", times=[0]),
                ]
            )
        )
        assert runtime.checkpoint("s", "k") == CORRUPT_WRITE

    def test_predict_kill_replays_worker_decision(self):
        plan = FaultPlan(
            seed=11,
            faults=[FaultSpec(kind="worker-kill", site="batch.worker", probability=0.5)],
        )
        parent = FaultRuntime(plan)  # in_worker=False: decision only, no SIGKILL
        worker = FaultRuntime(plan)
        for attempt in range(4):
            predicted = parent.predict_kill("batch.worker", "cell", attempt)
            with job_scope("cell", attempt):
                fired = worker.checkpoint("batch.worker", "cell") is None and bool(
                    worker.fired_total("worker-kill")
                )
            # the worker-side no-op (in_worker=False) still records the fire
            assert predicted == fired
            worker = FaultRuntime(plan)  # fresh process per attempt


# --------------------------------------------------------------------------- #
# per-kind behavior
# --------------------------------------------------------------------------- #
class TestFiring:
    def _runtime(self, **spec_kwargs) -> FaultRuntime:
        return FaultRuntime(FaultPlan(faults=[FaultSpec(**spec_kwargs)]))

    def test_exception_retryable_flag_selects_error_class(self):
        transient = self._runtime(kind="exception", site="s", times=[0])
        with pytest.raises(TransientFaultError):
            transient.checkpoint("s")
        persistent = self._runtime(kind="exception", site="s", times=[0], retryable=False)
        with pytest.raises(InjectedFaultError) as excinfo:
            persistent.checkpoint("s")
        assert not isinstance(excinfo.value, TransientFaultError)

    def test_custom_message_is_carried(self):
        runtime = self._runtime(kind="exception", site="s", times=[0], message="boom")
        with pytest.raises(TransientFaultError, match="boom"):
            runtime.checkpoint("s")

    def test_hang_sleeps_for_the_configured_duration(self):
        runtime = self._runtime(kind="hang", site="s", times=[0], seconds=0.05)
        started = time.perf_counter()
        assert runtime.checkpoint("s") is None
        assert time.perf_counter() - started >= 0.05

    def test_worker_kill_outside_worker_is_a_warning_noop(self, caplog, monkeypatch):
        # an earlier CLI test may have run logging_setup, which parks a
        # handler on the "repro" logger and stops propagation — caplog's
        # root handler would never see the record; neutralize for this test
        repro_logger = logging.getLogger("repro")
        monkeypatch.setattr(repro_logger, "propagate", True)
        monkeypatch.setattr(repro_logger, "handlers", [])
        runtime = self._runtime(kind="worker-kill", site="s", times=[0])
        with caplog.at_level("WARNING", logger="repro.faults"):
            assert runtime.checkpoint("s", "cell") is None
        assert any("ignored outside a worker" in rec.message for rec in caplog.records)
        assert runtime.fired_total("worker-kill") == 1

    def test_cache_write_error_is_enospc(self):
        runtime = self._runtime(kind="cache-write-error", site="s", times=[0])
        with pytest.raises(OSError) as excinfo:
            runtime.checkpoint("s")
        assert excinfo.value.errno == errno.ENOSPC

    def test_cache_corrupt_returns_the_sentinel(self):
        runtime = self._runtime(kind="cache-corrupt", site="s", times=[0])
        assert runtime.checkpoint("s") == CORRUPT_WRITE

    def test_llm_transient_raises_retryable_api_error(self):
        runtime = self._runtime(kind="llm-transient", site="s", times=[0])
        with pytest.raises(TransientAPIError):
            runtime.checkpoint("s")

    def test_fires_are_counted_and_surfaced_as_metrics(self):
        runtime = self._runtime(kind="exception", site="s", times=[0, 1])
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                runtime.checkpoint("s", "k")
        runtime.checkpoint("s", "k")
        assert runtime.fired_total() == 2
        assert runtime.fired_total("exception") == 2
        assert runtime.fired_total("hang") == 0
        snap = METRICS.snapshot()
        assert snap.counter_total("fault_injected_total", kind="exception", site="s") == 2.0


# --------------------------------------------------------------------------- #
# installation & zero-leak
# --------------------------------------------------------------------------- #
class TestInstallation:
    def test_disabled_state_is_inert(self):
        assert not faults_enabled()
        assert FAULT_STATE.runtime is None
        assert checkpoint("batch.job", "anything") is None
        assert not METRICS.snapshot()  # nothing moved

    def test_enable_disable_round_trip(self):
        plan = FaultPlan(faults=[FaultSpec(kind="exception", site="s", times=[0])])
        runtime = enable_faults(plan)
        assert faults_enabled() and FAULT_STATE.runtime is runtime
        assert disable_faults() is runtime
        assert not faults_enabled()

    def test_enabled_plan_with_no_matching_site_never_fires(self):
        enable_faults(FaultPlan(faults=[FaultSpec(kind="exception", site="elsewhere", times=[0])]))
        runtime = FAULT_STATE.runtime
        for _ in range(100):
            assert checkpoint("batch.job", "cell") is None
        assert runtime.invocations == 100
        assert runtime.fired_total() == 0
        assert not METRICS.snapshot()

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, site="s", probability=0.5)
