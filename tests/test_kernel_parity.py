"""Parity tests pinning the vectorized kernels against their ``_*_loop`` seeds.

Every hot-path rewrite in the kernel campaign keeps the historical
implementation as a ``_*_loop`` reference; these tests are the contract: the
fast path must reproduce the reference bit-for-bit where the arithmetic is
unchanged, and within a quantified tolerance where it legitimately
reassociates floats (index-space ray marching, early ray termination).
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

from repro.algorithms.delaunay3d import _bowyer_watson, _bowyer_watson_loop
from repro.algorithms.interpolation import (
    TrilinearSampler,
    _trilinear_gather_loop,
)
from repro.algorithms.isosurface import (
    _collect_line_corners,
    _collect_line_corners_loop,
    _collect_surface_corners,
    _collect_surface_corners_loop,
    _extract_level_set_loop,
    _unique_edges,
    _unique_edges_loop,
    extract_level_set,
)
from repro.algorithms.stream_tracer import (
    StreamTracerOptions,
    _trace_batch_loop,
    _trace_batch_signed,
    stream_tracer,
)
from repro.data.disk_flow import generate_disk_flow
from repro.data.marschner_lobb import generate_marschner_lobb
from repro.rendering.camera import Camera
from repro.rendering.transfer_function import (
    ColorTransferFunction,
    default_transfer_functions,
)

volume_render_module = importlib.import_module("repro.rendering.volume_render")
interpolation_module = importlib.import_module("repro.algorithms.interpolation")


@pytest.fixture(scope="module")
def ml20():
    return generate_marschner_lobb(20)


@pytest.fixture(scope="module")
def level_set_inputs(ml20):
    scalars = np.asarray(ml20.point_data["var0"].values, dtype=np.float64).reshape(-1)
    return ml20, scalars - 0.5


class TestIsosurfaceParity:
    def test_surface_corners_match_loop(self, level_set_inputs):
        from repro.algorithms.isosurface import tetrahedra_of_dataset

        dataset, g = level_set_inputs
        tets = tetrahedra_of_dataset(dataset)
        below = g[tets] < 0.0
        mask = (
            below[:, 0].astype(np.int64)
            | (below[:, 1].astype(np.int64) << 1)
            | (below[:, 2].astype(np.int64) << 2)
            | (below[:, 3].astype(np.int64) << 3)
        )
        fast_a, fast_b = _collect_surface_corners(tets, mask)
        loop_a, loop_b = _collect_surface_corners_loop(tets, mask)
        assert np.array_equal(fast_a, loop_a)
        assert np.array_equal(fast_b, loop_b)

    def test_line_corners_match_loop(self, ml20):
        rng = np.random.default_rng(3)
        tris = rng.integers(0, 50, size=(200, 3))
        below = rng.random(50)[tris] < 0.5
        mask = (
            below[:, 0].astype(np.int64)
            | (below[:, 1].astype(np.int64) << 1)
            | (below[:, 2].astype(np.int64) << 2)
        )
        fast_a, fast_b = _collect_line_corners(tris, mask)
        loop_a, loop_b = _collect_line_corners_loop(tris, mask)
        assert np.array_equal(fast_a, loop_a)
        assert np.array_equal(fast_b, loop_b)

    def test_unique_edges_match_loop(self):
        rng = np.random.default_rng(11)
        corner_a = rng.integers(0, 300, 1000)
        corner_b = rng.integers(0, 300, 1000)
        fast = _unique_edges(corner_a, corner_b, 300)
        loop = _unique_edges_loop(corner_a, corner_b, 300)
        for fast_part, loop_part in zip(fast, loop):
            assert np.array_equal(fast_part, loop_part)

    def test_extract_level_set_bit_equal_end_to_end(self, level_set_inputs):
        dataset, g = level_set_inputs
        fast = extract_level_set(dataset, g)
        loop = _extract_level_set_loop(dataset, g)
        assert np.array_equal(fast.points, loop.points)
        assert np.array_equal(fast.triangles, loop.triangles)
        assert fast.point_data.names() == loop.point_data.names()
        for name in fast.point_data.names():
            assert np.array_equal(
                fast.point_data[name].values, loop.point_data[name].values
            )


class TestTrilinearParity:
    def _world_points(self, image, n, seed=5):
        rng = np.random.default_rng(seed)
        bounds = image.bounds()
        lo = np.array([bounds.xmin, bounds.ymin, bounds.zmin])
        hi = np.array([bounds.xmax, bounds.ymax, bounds.zmax])
        span = hi - lo
        # overshoot the box on purpose: both paths clamp identically
        return lo - 0.1 * span + rng.random((n, 3)) * 1.2 * span

    def test_sampler_bit_equal_to_gather_loop(self, ml20):
        pts = self._world_points(ml20, 4000)
        sampler = TrilinearSampler(ml20, "var0")
        fast = sampler(pts)
        loop = _trilinear_gather_loop(ml20, "var0", pts)
        assert np.array_equal(fast, loop)

    def test_workspace_path_bit_equal(self, ml20):
        pts = self._world_points(ml20, 513, seed=6)
        sampler = TrilinearSampler(ml20, "var0")
        cont = ml20.world_to_continuous_index(pts)
        axes_a = np.ascontiguousarray(cont.T)
        axes_b = axes_a.copy()
        workspace = sampler.make_workspace(1024)
        with_ws = sampler.sample_continuous_axes(axes_a, workspace).copy()
        without_ws = sampler.sample_continuous_axes(axes_b)
        assert np.array_equal(with_ws, without_ws)
        # a sliced re-use of the same workspace (compacted working set)
        axes_c = np.ascontiguousarray(cont.T[:, :100])
        small = sampler.sample_continuous_axes(axes_c, workspace)
        assert np.array_equal(small, without_ws[:100])

    def test_nan_points_come_back_nan(self, ml20):
        # NaN handling is a feature of the sampler only: the pinned loop
        # predates it and faults on non-finite input
        pts = self._world_points(ml20, 10)
        pts[3] = np.nan
        pts[7, 1] = np.inf
        out = TrilinearSampler(ml20, "var0")(pts)
        assert np.isnan(out[3]) and np.isnan(out[7])
        finite_rows = [i for i in range(10) if i not in (3, 7)]
        assert np.isfinite(out[finite_rows]).all()


class TestTrilinearBoundaries:
    def test_exact_max_corner(self, ml20):
        bounds = ml20.bounds()
        corner = np.array([[bounds.xmax, bounds.ymax, bounds.zmax]])
        values = np.asarray(ml20.point_data["var0"].values, dtype=np.float64).reshape(-1)
        out = TrilinearSampler(ml20, "var0")(corner)
        assert out[0] == values[-1]

    def test_out_of_bounds_clamps_to_faces(self, ml20):
        bounds = ml20.bounds()
        inside = np.array([[bounds.xmin, bounds.ymin, bounds.zmin]])
        way_out = inside - 100.0
        sampler = TrilinearSampler(ml20, "var0")
        assert sampler(way_out)[0] == sampler(inside)[0]

    def test_single_slab_dimension(self):
        from repro.datamodel import ImageData

        image = ImageData(dimensions=(4, 4, 1), spacing=(1.0, 1.0, 1.0))
        values = np.arange(16, dtype=np.float64)
        image.point_data.add_array("f", values)
        sampler = TrilinearSampler(image, "f")
        out = sampler(np.array([[1.5, 2.5, 0.0], [0.0, 0.0, 5.0]]))
        # bilinear blend of flat ids 9/10/13/14 with exact 0.5 fractions
        assert out[0] == 11.5
        # the z overshoot clamps onto the slab instead of faulting
        assert out[1] == values[0]


class TestStreamTracerParity:
    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_trace_batch_matches_loop(self, disk_flow_small, sign):
        from repro.algorithms.interpolation import FieldInterpolator

        interpolator = FieldInterpolator(disk_flow_small)
        rng = np.random.default_rng(9)
        bounds = disk_flow_small.bounds()
        lo = np.array([bounds.xmin, bounds.ymin, bounds.zmin])
        hi = np.array([bounds.xmax, bounds.ymax, bounds.zmax])
        seeds = lo + rng.random((12, 3)) * (hi - lo)
        options = StreamTracerOptions(max_steps=60)
        signs = np.full(len(seeds), sign)
        fast = _trace_batch_signed(interpolator, "V", seeds, options, signs)
        loop = _trace_batch_loop(interpolator, "V", seeds, options, sign)
        assert len(fast) == len(loop)
        for (fast_path, fast_t), (loop_path, loop_t) in zip(fast, loop):
            assert np.array_equal(fast_path, loop_path)
            assert np.array_equal(fast_t, loop_t)

    def test_stream_tracer_end_to_end_runs(self, disk_flow_small):
        poly = stream_tracer(disk_flow_small, "V", n_seed_points=10)
        assert poly.n_points > 0


class TestCompositeParity:
    def test_volume_render_matches_loop_within_termination_bound(self, ml20):
        camera = Camera().isometric_view(ml20.bounds())
        fast = volume_render_module.volume_render(
            ml20, "var0", camera, 96, 72, n_samples=40
        )
        saved = volume_render_module._composite_rays
        volume_render_module._composite_rays = volume_render_module._composite_rays_loop
        try:
            loop = volume_render_module.volume_render(
                ml20, "var0", camera, 96, 72, n_samples=40
            )
        finally:
            volume_render_module._composite_rays = saved
        # index-space marching reassociates floats (ulp-level) and early
        # termination truncates a saturated ray's tail, whose contribution is
        # bounded by its residual transmittance 1 - 0.995
        assert np.abs(fast.color - loop.color).max() <= 0.005 + 1e-9


class TestDelaunayParity:
    def test_bowyer_watson_bit_equal_random(self):
        rng = np.random.default_rng(7)
        points = rng.random((120, 3))
        assert np.array_equal(_bowyer_watson(points), _bowyer_watson_loop(points))

    def test_bowyer_watson_bit_equal_degenerate_grid(self):
        grid = np.stack(
            np.meshgrid(np.arange(4.0), np.arange(4.0), np.arange(4.0), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        assert np.array_equal(_bowyer_watson(grid), _bowyer_watson_loop(grid))


class TestTransferFunctionParity:
    def test_map_scalars_bit_equal_to_direct_interp(self):
        ctf, otf = default_transfer_functions(0.0, 1.0)
        values = np.random.default_rng(2).random(500)
        xs = np.array([p[0] for p in ctf.points])
        for channel in range(3):
            ys = np.array([p[1 + channel] for p in ctf.points])
            assert np.array_equal(
                ctf.map_scalars(values)[:, channel], np.interp(values, xs, ys)
            )
        oxs = np.array([p[0] for p in otf.points])
        oys = np.array([p[1] for p in otf.points])
        assert np.array_equal(otf.map_scalars(values), np.interp(values, oxs, oys))

    def test_channel_major_matches_row_major(self):
        ctf, _ = default_transfer_functions(0.0, 1.0)
        values = np.random.default_rng(4).random(64)
        rows = ctf.map_scalars(values)
        channels = ctf.map_scalars_channels(values, out=np.empty((3, 64)))
        assert np.array_equal(channels, rows.T)

    def test_cache_invalidates_when_points_change(self):
        ctf = ColorTransferFunction()
        ctf.add_point(0.0, 0.0, 0.0, 0.0).add_point(1.0, 1.0, 1.0, 1.0)
        before = ctf.map_scalars(np.array([0.5]))[0].copy()
        ctf.add_point(0.5, 1.0, 0.0, 0.0)
        after = ctf.map_scalars(np.array([0.5]))[0]
        assert not np.array_equal(before, after)


class TestNumbaGate:
    def test_disabled_by_default(self, monkeypatch):
        from repro.perf import accel

        monkeypatch.delenv(accel.NUMBA_ENV_VAR, raising=False)
        assert not accel.numba_requested()
        assert not accel.numba_enabled()
        assert accel.trilinear_gather_lerp_kernel() is None

    def test_requested_but_unavailable_falls_back(self, monkeypatch, ml20):
        from repro.perf import accel

        monkeypatch.setenv(accel.NUMBA_ENV_VAR, "1")
        assert accel.numba_requested()
        if accel.numba_available():  # pragma: no cover - numba not in CI image
            pytest.skip("numba installed; fallback path not reachable")
        assert not accel.numba_enabled()
        # the sampler still answers through the NumPy path
        pts = np.array([[0.0, 0.0, 0.0]])
        out = TrilinearSampler(ml20, "var0")(pts)
        assert np.isfinite(out).all()
