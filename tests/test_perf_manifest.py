"""Tests for the ``repro bench manifest`` subsystem (repro.perf)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.perf import all_kernel_names, run_manifest
from repro.perf.manifest import BENCH_FILENAME, KernelSpec
from repro.perf.report import (
    SCHEMA_ID,
    compare_manifests,
    format_comparison,
    format_manifest,
    load_bench,
    validate_bench,
    write_bench,
)


def _tiny_spec(name="tiny", scale=1.0):
    def setup():
        return {"x": np.arange(2048, dtype=np.float64)}

    def current(ctx):
        return float((ctx["x"] * scale).sum())

    def reference(ctx):
        total = 0.0
        for value in ctx["x"]:
            total += value * scale
        return total

    return KernelSpec(
        name=name,
        title="toy reduction",
        size="2048 doubles",
        setup=setup,
        current=current,
        reference=reference,
    )


@pytest.fixture(scope="module")
def tiny_payload():
    return run_manifest(
        rounds=2, include_suite=False, include_cache=False, specs=[_tiny_spec()]
    )


class TestRunManifest:
    def test_payload_shape_and_schema(self, tiny_payload):
        assert validate_bench(tiny_payload) is tiny_payload
        assert tiny_payload["schema"] == SCHEMA_ID
        assert tiny_payload["bench"] == BENCH_FILENAME
        assert tiny_payload["rounds"] == 2
        entry = tiny_payload["kernels"]["tiny"]
        assert entry["current_ms"] > 0
        assert entry["reference_ms"] > 0
        assert entry["speedup_min"] <= entry["speedup"] <= entry["speedup_max"]
        machine = tiny_payload["machine"]
        assert machine["numpy"] == np.__version__
        assert machine["cpu_count"] >= 1

    def test_vectorized_toy_kernel_beats_python_loop(self, tiny_payload):
        # sanity of the measurement itself: a numpy sum vs a python loop
        # must show a large speedup even on noisy shared hardware
        assert tiny_payload["kernels"]["tiny"]["speedup"] > 5

    def test_kernel_selection_and_unknown_kernel(self):
        with pytest.raises(KeyError):
            run_manifest(rounds=1, kernels=["nope"], specs=[_tiny_spec()])
        payload = run_manifest(
            rounds=1,
            kernels=["a"],
            include_suite=False,
            include_cache=False,
            specs=[_tiny_spec("a"), _tiny_spec("b")],
        )
        assert list(payload["kernels"]) == ["a"]

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            run_manifest(rounds=0, specs=[_tiny_spec()])

    def test_all_kernel_names_lists_the_four_substrate_kernels(self):
        assert all_kernel_names() == ["isosurface", "volume", "streamline", "delaunay"]


class TestBenchReport:
    def test_write_load_roundtrip(self, tiny_payload, tmp_path):
        path = write_bench(tiny_payload, tmp_path / "BENCH_test.json")
        loaded = load_bench(path)
        assert loaded == json.loads(json.dumps(tiny_payload))

    def test_validation_rejects_missing_and_mistyped(self, tiny_payload):
        bad = dict(tiny_payload)
        bad.pop("git_rev")
        with pytest.raises(ValueError, match="git_rev"):
            validate_bench(bad)
        bad = json.loads(json.dumps(tiny_payload))
        bad["kernels"]["tiny"]["speedup"] = "fast"
        with pytest.raises(ValueError, match="speedup"):
            validate_bench(bad)
        with pytest.raises(ValueError, match="schema"):
            validate_bench({"schema": "other/9"})
        with pytest.raises(ValueError, match="JSON|object"):
            validate_bench([1, 2, 3])

    def test_load_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"schema": "repro-bench/1", ')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_bench(path)

    def test_compare_and_format(self, tiny_payload):
        candidate = json.loads(json.dumps(tiny_payload))
        candidate["git_rev"] = "feedbeef"
        candidate["kernels"]["tiny"]["current_ms"] *= 0.5
        candidate["kernels"]["extra"] = dict(candidate["kernels"]["tiny"])
        comparison = compare_manifests(tiny_payload, candidate)
        assert comparison["kernels"]["tiny"]["current_ms_delta_pct"] == pytest.approx(-50.0)
        assert comparison["only_in_candidate"] == ["extra"]
        text = format_comparison(comparison)
        assert "tiny" in text and "-50.0%" in text and "feedbeef" in text
        table = format_manifest(tiny_payload)
        assert "tiny" in table and "toy reduction" not in table  # table shows names
        assert "speedup" in table


class TestBenchManifestCli:
    def test_manifest_subcommand_writes_and_compares(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "manifest",
                "--rounds",
                "1",
                "--kernel",
                "isosurface",
                "--no-suite",
                "--no-cache",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "isosurface" in printed and "speedup" in printed
        payload = load_bench(out_path)
        assert list(payload["kernels"]) == ["isosurface"]
        assert payload["kernels"]["isosurface"]["speedup"] > 1.0

        # informational diff against the artifact we just wrote
        code = main(
            [
                "bench",
                "manifest",
                "--rounds",
                "1",
                "--kernel",
                "isosurface",
                "--no-suite",
                "--no-cache",
                "--compare",
                str(out_path),
            ]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_plain_bench_still_works(self, tmp_path, capsys):
        code = main(["bench", "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "cold run" in capsys.readouterr().out


class TestCommittedBench:
    def test_committed_manifest_is_valid_and_meets_the_bar(self):
        from pathlib import Path

        committed = Path(__file__).resolve().parents[1] / BENCH_FILENAME
        payload = load_bench(committed)
        kernels = payload["kernels"]
        assert set(kernels) == set(all_kernel_names())
        # the campaign's acceptance bar: >= 2x on at least three kernels
        at_bar = [name for name, entry in kernels.items() if entry["speedup"] >= 2.0]
        assert len(at_bar) >= 3, f"only {at_bar} reached 2x in the committed manifest"


class TestCommittedBlocksBench:
    def test_committed_blocks_manifest_is_valid(self):
        from pathlib import Path

        from repro.perf.manifest import BLOCKS_BENCH_FILENAME, BLOCKS_BENCH_WORKERS

        committed = Path(__file__).resolve().parents[1] / BLOCKS_BENCH_FILENAME
        payload = load_bench(committed)
        assert payload["bench"] == BLOCKS_BENCH_FILENAME
        expected = {f"blocks_w{w}" for w in BLOCKS_BENCH_WORKERS}
        assert set(payload["kernels"]) == expected
        for name, entry in payload["kernels"].items():
            assert entry["current_ms"] > 0, name
            assert entry["reference_ms"] > 0, name
            assert entry["rounds"] >= 1, name
            assert entry["speedup_min"] <= entry["speedup"] <= entry["speedup_max"], name
        blocks = payload["blocks"]
        assert blocks["workers"] == list(BLOCKS_BENCH_WORKERS)
        assert set(blocks["ops"]) == {"contour", "slice", "threshold", "clip"}
        # the out-of-core claim needs a volume well beyond the canonical suite
        assert blocks["n_points"] >= 4 * 24**3
