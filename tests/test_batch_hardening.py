"""Crash-safety tests for the hardened batch runners (``repro.engine.batch``).

Exercises the fault-tolerance contract end to end with injected faults:
per-attempt timeouts on all three execution paths (serial SIGALRM, thread
parent-side deadlines, process worker-side alarms), bounded retry with
backoff, ``BrokenProcessPool`` recovery with exact blame and quarantine,
worker-error sanitization, interrupted-run cache cleanup, write-failure
degradation of the disk cache, and LLM-transient faults riding the
existing dispatch retry policy.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro.engine import (
    BatchJob,
    JobTimeoutError,
    PoisonJobError,
    ProcessBatchRunner,
    run_batch,
)
from repro.engine.batch import WorkerJobError
from repro.engine.cache import DiskCache
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    TransientFaultError,
    disable_faults,
    enable_faults,
)
from repro.llm.base import ChatMessage, CompletionResponse, Usage
from repro.llm.core import ManagedLLM
from repro.obs import METRICS


@pytest.fixture(autouse=True)
def _hermetic():
    disable_faults()
    METRICS.reset()
    yield
    disable_faults()
    METRICS.reset()


def _recovery_count(action: str) -> float:
    return METRICS.snapshot().counter_total("recovery_total", action=action)


# --------------------------------------------------------------------------- #
# module-level job bodies (the spawn-based process pool must pickle them)
# --------------------------------------------------------------------------- #
def _square(value: int) -> int:
    return value * value


def _napping(seconds: float) -> str:
    time.sleep(seconds)
    return "woke"


def _kill_first_run(marker: str) -> str:
    """Self-SIGKILL on the first run, succeed on the second (a real crash)."""
    path = Path(marker)
    if not path.exists():
        path.write_text("struck")
        os.kill(os.getpid(), signal.SIGKILL)
    return "recovered"


class _SneakyError(RuntimeError):
    def __init__(self) -> None:
        super().__init__("hidden detail")
        self.payload = lambda: None  # lambdas don't pickle


def _raise_sneaky() -> None:
    raise _SneakyError()


# --------------------------------------------------------------------------- #
# timeouts
# --------------------------------------------------------------------------- #
class TestTimeouts:
    def test_serial_timeout_interrupts_a_hang(self):
        results = run_batch([BatchJob("slow", _napping, (5.0,))], job_timeout=0.2)
        assert isinstance(results[0].error, JobTimeoutError)
        assert "slow" in str(results[0].error) and "0.2" in str(results[0].error)
        assert _recovery_count("timeout") == 1.0

    def test_thread_pool_deadline_frees_the_batch(self):
        jobs = [BatchJob("hang", _napping, (1.5,))] + [
            BatchJob(f"quick{i}", _square, (i,)) for i in range(3)
        ]
        started = time.perf_counter()
        results = run_batch(jobs, max_workers=2, job_timeout=0.3)
        assert time.perf_counter() - started < 1.5  # did not wait out the hang
        assert isinstance(results[0].error, JobTimeoutError)
        assert [r.value for r in results[1:]] == [0, 1, 4]

    def test_process_worker_alarm_kills_a_hang(self):
        results = ProcessBatchRunner(max_workers=2, job_timeout=0.3).run(
            [BatchJob("hang", _napping, (5.0,)), BatchJob("quick", _square, (3,))]
        )
        assert isinstance(results[0].error, JobTimeoutError)
        assert results[1].ok and results[1].value == 9

    def test_outer_itimer_survives_a_timed_job(self):
        """A pre-armed ITIMER_REAL must come back (minus the job's elapsed
        time) after a timed serial job — the alarm scope used to discard it."""
        fired = []
        previous = signal.signal(signal.SIGALRM, lambda *_: fired.append(True))
        signal.setitimer(signal.ITIMER_REAL, 0.8)
        try:
            results = run_batch([BatchJob("quick", _square, (2,))], job_timeout=0.2)
            assert results[0].ok and results[0].value == 4
            value, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < value <= 0.8  # restored, and debited for elapsed time
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fired  # the outer watchdog still goes off
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_past_due_outer_alarm_fires_instead_of_vanishing(self):
        fired = []
        previous = signal.signal(signal.SIGALRM, lambda *_: fired.append(True))
        # outer deadline expires *while* the job holds ITIMER_REAL: the scope
        # must re-arm a minimal positive tick, not cancel the alarm outright
        signal.setitimer(signal.ITIMER_REAL, 0.05)
        try:
            results = run_batch([BatchJob("nap", _napping, (0.2,))], job_timeout=5.0)
            assert results[0].ok
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_injected_hang_times_out_then_retries_clean(self):
        # the hang fires only on attempt 0; the retry re-rolls and runs clean
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(kind="hang", site="batch.job", seconds=5.0, attempts=[0], times=[0])
                ]
            )
        )
        results = run_batch(
            [BatchJob("cell", _square, (4,))], job_timeout=0.2, job_retries=1
        )
        assert results[0].ok and results[0].value == 16
        assert _recovery_count("timeout") == 1.0
        assert _recovery_count("retry") == 1.0


# --------------------------------------------------------------------------- #
# retries
# --------------------------------------------------------------------------- #
class TestRetries:
    def test_transient_fault_retries_to_success(self):
        enable_faults(
            FaultPlan(faults=[FaultSpec(kind="exception", site="batch.job", attempts=[0], times=[0])])
        )
        results = run_batch([BatchJob("cell", _square, (5,))], job_retries=1)
        assert results[0].ok and results[0].value == 25
        assert _recovery_count("retry") == 1.0

    def test_exhausted_retries_surface_the_error(self):
        enable_faults(
            FaultPlan(faults=[FaultSpec(kind="exception", site="batch.job", probability=1.0)])
        )
        results = run_batch([BatchJob("cell", _square, (5,))], job_retries=1)
        assert isinstance(results[0].error, TransientFaultError)
        assert _recovery_count("retry") == 1.0  # one retry granted, then surfaced

    def test_persistent_faults_never_retry(self):
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(
                        kind="exception", site="batch.job", times=[0], retryable=False
                    )
                ]
            )
        )
        results = run_batch([BatchJob("cell", _square, (5,))], job_retries=3)
        assert isinstance(results[0].error, InjectedFaultError)
        assert not isinstance(results[0].error, TransientFaultError)
        assert _recovery_count("retry") == 0.0

    def test_thread_pool_retry_with_innocents(self):
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(
                        kind="exception",
                        site="batch.job",
                        match="flaky",
                        attempts=[0],
                        times=[0],
                    )
                ]
            )
        )
        jobs = [BatchJob("flaky", _square, (2,))] + [
            BatchJob(f"steady{i}", _square, (i,)) for i in range(3)
        ]
        results = run_batch(jobs, max_workers=2, job_retries=2)
        assert [r.value for r in results] == [4, 0, 1, 4]


# --------------------------------------------------------------------------- #
# BrokenProcessPool recovery
# --------------------------------------------------------------------------- #
class TestPoolRecovery:
    def test_injected_worker_kill_recovers_with_exact_blame(self):
        enable_faults(
            FaultPlan(
                seed=5,
                faults=[
                    FaultSpec(
                        kind="worker-kill", site="batch.worker", match="victim", attempts=[0]
                    )
                ],
            )
        )
        jobs = [BatchJob("victim", _square, (7,))] + [
            BatchJob(f"bystander{i}", _square, (i,)) for i in range(3)
        ]
        results = ProcessBatchRunner(max_workers=2).run(jobs)
        assert [r.value for r in results] == [49, 0, 1, 4]
        assert all(r.ok for r in results)
        assert _recovery_count("pool-restart") >= 1.0
        assert _recovery_count("quarantine") == 0.0

    def test_persistent_killer_is_quarantined(self):
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(
                        kind="worker-kill", site="batch.worker", match="poison", probability=1.0
                    )
                ]
            )
        )
        jobs = [BatchJob("poison", _square, (1,))] + [
            BatchJob(f"bystander{i}", _square, (i,)) for i in range(2)
        ]
        results = ProcessBatchRunner(max_workers=2, poison_strikes=2).run(jobs)
        assert isinstance(results[0].error, PoisonJobError)
        assert "poison" in str(results[0].error) and "quarantined" in str(results[0].error)
        assert [r.value for r in results[1:]] == [0, 1]
        assert _recovery_count("quarantine") == 1.0
        assert _recovery_count("pool-restart") >= 2.0

    def test_real_crash_without_a_plan_recovers_heuristically(self, tmp_path):
        jobs = [
            BatchJob("crasher", _kill_first_run, (str(tmp_path / "marker"),)),
            BatchJob("bystander", _square, (6,)),
        ]
        results = ProcessBatchRunner(max_workers=2).run(jobs)
        assert results[0].ok and results[0].value == "recovered"
        assert results[1].ok and results[1].value == 36
        assert _recovery_count("pool-restart") >= 1.0


# --------------------------------------------------------------------------- #
# worker error sanitization (the message contract)
# --------------------------------------------------------------------------- #
class TestWorkerJobError:
    def test_message_always_embeds_type_name_and_job_id(self):
        results = ProcessBatchRunner(max_workers=2).run(
            [BatchJob("gpt-4/contour", _raise_sneaky), BatchJob("fine", _square, (2,))]
        )
        error = results[0].error
        assert isinstance(error, WorkerJobError)
        assert error.job_name == "gpt-4/contour"
        assert error.error_type == "_SneakyError"
        rendered = str(error)
        assert "'gpt-4/contour'" in rendered and "_SneakyError" in rendered
        assert "hidden detail" in rendered

    def test_hardening_errors_round_trip_through_pickle(self):
        for error in (
            WorkerJobError("job", "ValueError", "bad input", "Traceback ..."),
            JobTimeoutError("job", 1.5),
            PoisonJobError("job", 3),
        ):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)


# --------------------------------------------------------------------------- #
# interrupted-run cleanup (KeyboardInterrupt during pool teardown)
# --------------------------------------------------------------------------- #
class TestInterruptCleanup:
    def test_interrupt_sweeps_stale_tmp_and_leaves_lock_acquirable(self, tmp_path, monkeypatch):
        root = tmp_path / "cache"
        cache = DiskCache(root)
        key = "ab" + "0" * 38
        cache.put(key, {"kept": True})
        # a worker hard-killed mid-write leaves its staging file behind
        shard = root / "cd"
        shard.mkdir()
        (shard / ".deadbeef.bin.tmp").write_bytes(b"partial")

        from repro.engine import batch as batch_mod

        def _boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(batch_mod, "_drain_process_pool", _boom)
        runner = ProcessBatchRunner(max_workers=2, cache_dir=root)
        with pytest.raises(KeyboardInterrupt):
            runner.run([BatchJob(f"j{i}", _square, (i,)) for i in range(3)])

        assert list(root.rglob("*.tmp")) == []
        # the flock is free and the store still serves reads and writes
        fresh = DiskCache(root)
        assert fresh.get(key) == (True, {"kept": True})
        fresh.put("ef" + "0" * 38, {"new": True})
        assert fresh.get("ef" + "0" * 38) == (True, {"new": True})

    def test_sweep_counts_only_staging_files(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put("ab" + "1" * 38, "value")
        shard = cache.root / "ab"
        (shard / ".stale.bin.tmp").write_bytes(b"x")
        assert cache.sweep_stale_tmp() == 1
        assert cache.get("ab" + "1" * 38) == (True, "value")


# --------------------------------------------------------------------------- #
# disk-cache write hardening
# --------------------------------------------------------------------------- #
class TestCacheWriteHardening:
    def test_write_failures_degrade_to_cache_off(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put("aa" + "0" * 38, "early")  # lands before the storage "fails"
        enable_faults(
            FaultPlan(
                faults=[FaultSpec(kind="cache-write-error", site="cache.disk.write", probability=1.0)]
            )
        )
        for i in range(4):
            cache.put(f"bb{i}" + "0" * 36, f"doomed{i}")  # never raises
        assert cache.stats.write_failures == cache.WRITE_FAILURE_LIMIT
        assert cache.writes_disabled  # the 4th put was skipped outright
        assert cache.get("aa" + "0" * 38) == (True, "early")  # reads stay on
        snap = METRICS.snapshot()
        assert snap.counter_total("cache_write_failures_total", tier="disk") == 3.0

    def test_a_successful_write_resets_the_streak(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        key = "cc" + "0" * 38
        enable_faults(
            FaultPlan(
                faults=[
                    FaultSpec(kind="cache-write-error", site="cache.disk.write", times=[0, 1])
                ]
            )
        )
        cache.put(key, "v1")  # occurrence 0: fails
        cache.put(key, "v2")  # occurrence 1: fails
        cache.put(key, "v3")  # occurrence 2: lands, streak resets
        assert cache.stats.write_failures == 2
        assert not cache.writes_disabled
        assert cache.get(key) == (True, "v3")

    def test_corrupt_write_is_discarded_on_read(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        key = "dd" + "0" * 38
        enable_faults(
            FaultPlan(
                faults=[FaultSpec(kind="cache-corrupt", site="cache.disk.write", times=[0])]
            )
        )
        cache.put(key, {"precious": 1})  # scribbled on the way down
        found, _ = cache.get(key)
        assert not found  # a miss, never an exception
        assert cache.stats.corruptions == 1
        cache.put(key, {"precious": 2})  # occurrence 1: clean
        assert cache.get(key) == (True, {"precious": 2})


# --------------------------------------------------------------------------- #
# LLM-transient faults ride the existing dispatch retry policy
# --------------------------------------------------------------------------- #
class _FakeClient:
    def __init__(self) -> None:
        self.model_name = "fake-model"
        self.calls = 0

    def complete(self, messages, temperature=0.0, seed=None, max_tokens=None):
        self.calls += 1
        return CompletionResponse(text="print('ok')", model=self.model_name, usage=Usage(10, 5))


class TestLLMTransientFaults:
    def test_transient_api_fault_is_absorbed_by_dispatch_retry(self):
        enable_faults(
            FaultPlan(faults=[FaultSpec(kind="llm-transient", site="llm.dispatch", times=[0])])
        )
        llm = ManagedLLM(_FakeClient(), sleep=lambda s: None)
        response = llm.complete([ChatMessage(role="user", content="hi")])
        assert response.text == "print('ok')"
        assert llm.spend.retries == 1
        assert llm.inner.calls == 1  # the fault fired before the client was reached
