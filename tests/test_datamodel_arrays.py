"""Unit tests for DataArray / FieldData."""

import numpy as np
import pytest

from repro.datamodel import AssociationError, DataArray, FieldData


class TestDataArray:
    def test_scalar_shape_and_components(self):
        arr = DataArray("a", [1.0, 2.0, 3.0])
        assert arr.n_tuples == 3
        assert arr.n_components == 1
        assert arr.is_scalar and not arr.is_vector

    def test_vector_shape(self):
        arr = DataArray("v", np.ones((4, 3)))
        assert arr.n_tuples == 4
        assert arr.n_components == 3
        assert arr.is_vector

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            DataArray("", [1.0])

    def test_rejects_3d_values(self):
        with pytest.raises(ValueError):
            DataArray("x", np.zeros((2, 2, 2)))

    def test_rejects_object_dtype(self):
        with pytest.raises(TypeError):
            DataArray("x", np.array(["a", "b"], dtype=object))

    def test_as_scalar_magnitude_for_vectors(self):
        arr = DataArray("v", [[3.0, 4.0, 0.0]])
        assert arr.as_scalar()[0] == pytest.approx(5.0)

    def test_component_access(self):
        arr = DataArray("v", [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert np.allclose(arr.component(1), [2.0, 5.0])
        with pytest.raises(IndexError):
            arr.component(3)

    def test_range_scalar(self):
        arr = DataArray("a", [3.0, -1.0, 2.0])
        assert arr.range() == (-1.0, 3.0)

    def test_range_empty(self):
        arr = DataArray("a", np.zeros((0,)))
        assert arr.range() == (0.0, 0.0)

    def test_range_specific_component(self):
        arr = DataArray("v", [[1.0, 10.0, 0.0], [2.0, -5.0, 0.0]])
        assert arr.range(component=1) == (-5.0, 10.0)

    def test_take(self):
        arr = DataArray("a", [0.0, 10.0, 20.0, 30.0])
        sub = arr.take([3, 1])
        assert np.allclose(sub.as_scalar(), [30.0, 10.0])
        assert sub.name == "a"

    def test_interpolate_midpoint(self):
        arr = DataArray("a", [0.0, 10.0])
        out = arr.interpolate([0], [1], [0.5])
        assert out.as_scalar()[0] == pytest.approx(5.0)

    def test_interpolate_vector(self):
        arr = DataArray("v", [[0.0, 0.0, 0.0], [2.0, 4.0, 6.0]])
        out = arr.interpolate([0], [1], [0.25])
        assert np.allclose(out.values[0], [0.5, 1.0, 1.5])

    def test_len_and_getitem(self):
        arr = DataArray("a", [1.0, 2.0])
        assert len(arr) == 2
        assert arr[1, 0] == pytest.approx(2.0)

    def test_equality(self):
        a = DataArray("a", [1.0, 2.0])
        b = DataArray("a", [1.0, 2.0])
        c = DataArray("a", [1.0, 3.0])
        assert a == b
        assert a != c

    def test_copy_and_rename(self):
        a = DataArray("a", [1.0])
        b = a.copy("b")
        assert b.name == "b"
        assert np.allclose(a.values, b.values)

    def test_integer_dtype_preserved(self):
        arr = DataArray("i", np.array([1, 2, 3], dtype=np.int32))
        assert arr.dtype.kind == "i"


class TestFieldData:
    def test_add_and_get(self):
        fd = FieldData()
        fd.add_array("a", [1.0, 2.0])
        assert "a" in fd
        assert fd["a"].n_tuples == 2

    def test_missing_key_message(self):
        fd = FieldData()
        with pytest.raises(KeyError, match="no data array named"):
            fd["missing"]

    def test_expected_tuples_enforced(self):
        fd = FieldData(expected_tuples=3)
        with pytest.raises(AssociationError):
            fd.add_array("a", [1.0, 2.0])

    def test_set_expected_tuples_validates_existing(self):
        fd = FieldData()
        fd.add_array("a", [1.0, 2.0])
        with pytest.raises(AssociationError):
            fd.set_expected_tuples(5)

    def test_first_scalar_and_vector(self):
        fd = FieldData()
        fd.add_array("v", np.ones((3, 3)))
        fd.add_array("s", [1.0, 2.0, 3.0])
        assert fd.first_scalar().name == "s"
        assert fd.first_vector().name == "v"

    def test_scalar_and_vector_names(self):
        fd = FieldData()
        fd.add_array("v", np.ones((3, 3)))
        fd.add_array("s", [1.0, 2.0, 3.0])
        assert fd.scalar_names() == ["s"]
        assert fd.vector_names() == ["v"]

    def test_take_restricts_all_arrays(self):
        fd = FieldData()
        fd.add_array("a", [0.0, 1.0, 2.0])
        fd.add_array("b", [[0, 0, 0], [1, 1, 1], [2, 2, 2]])
        sub = fd.take([2, 0])
        assert np.allclose(sub["a"].as_scalar(), [2.0, 0.0])
        assert sub.expected_tuples == 2

    def test_interpolate_all_arrays(self):
        fd = FieldData()
        fd.add_array("a", [0.0, 4.0])
        out = fd.interpolate([0], [1], [0.25])
        assert out["a"].as_scalar()[0] == pytest.approx(1.0)

    def test_remove_and_clear(self):
        fd = FieldData()
        fd.add_array("a", [1.0])
        fd.remove("a")
        assert "a" not in fd
        fd.add_array("b", [1.0])
        fd.clear()
        assert len(fd) == 0

    def test_add_requires_dataarray(self):
        fd = FieldData()
        with pytest.raises(TypeError):
            fd.add([1.0, 2.0])

    def test_copy_is_deep(self):
        fd = FieldData()
        fd.add_array("a", [1.0, 2.0])
        other = fd.copy()
        other["a"].values[0, 0] = 99.0
        assert fd["a"].values[0, 0] == pytest.approx(1.0)

    def test_iteration_order_preserved(self):
        fd = FieldData()
        for name in ("z", "a", "m"):
            fd.add_array(name, [1.0])
        assert fd.names() == ["z", "a", "m"]
