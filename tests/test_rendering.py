"""Tests for transforms, camera, colormaps, transfer functions, framebuffer,
rasterizer, volume renderer and scene rendering."""

import numpy as np
import pytest

from repro.datamodel import Bounds
from repro.rendering import (
    Actor,
    Camera,
    ColorTransferFunction,
    Framebuffer,
    LookupTable,
    OpacityTransferFunction,
    RepresentationType,
    Scene,
    default_transfer_functions,
    get_colormap,
    list_colormaps,
    look_at_matrix,
    perspective_matrix,
    rasterize_lines,
    rasterize_points,
    rasterize_triangles,
    render_scene,
    viewport_transform,
    volume_render,
)
from repro.rendering.transforms import (
    normalize,
    orthographic_matrix,
    rotation_about_axis,
    transform_points,
)


class TestTransforms:
    def test_normalize(self):
        assert np.allclose(normalize([0, 0, 5]), [0, 0, 1])
        with pytest.raises(ValueError):
            normalize([0, 0, 0])

    def test_look_at_places_eye_at_origin(self):
        view = look_at_matrix([0, 0, 5], [0, 0, 0], [0, 1, 0])
        eye_cam = (view @ np.array([0, 0, 5, 1]))[:3]
        assert np.allclose(eye_cam, 0, atol=1e-12)

    def test_look_at_target_on_negative_z(self):
        view = look_at_matrix([0, 0, 5], [0, 0, 0], [0, 1, 0])
        target_cam = (view @ np.array([0, 0, 0, 1]))[:3]
        assert target_cam[2] == pytest.approx(-5.0)

    def test_look_at_coincident_raises(self):
        with pytest.raises(ValueError):
            look_at_matrix([1, 1, 1], [1, 1, 1], [0, 1, 0])

    def test_perspective_matrix_properties(self):
        proj = perspective_matrix(45.0, 2.0, 0.1, 100.0)
        assert proj[3, 2] == -1.0
        with pytest.raises(ValueError):
            perspective_matrix(45.0, 1.0, 1.0, 0.5)

    def test_orthographic_matrix(self):
        proj = orthographic_matrix(2.0, 1.0, 0.1, 10.0)
        assert proj[0, 0] == pytest.approx(1.0)

    def test_viewport_transform_corners(self):
        ndc = np.array([[-1.0, 1.0, 0.0], [1.0, -1.0, 0.5]])
        screen = viewport_transform(ndc, 100, 50)
        assert np.allclose(screen[0, :2], [0, 0])
        assert np.allclose(screen[1, :2], [99, 49])

    def test_transform_points(self):
        matrix = np.eye(4)
        matrix[0, 3] = 2.0
        xyz, w = transform_points(matrix, [[1, 1, 1]])
        assert np.allclose(xyz[0], [3, 1, 1])
        assert w[0] == 1.0

    def test_rotation_about_axis(self):
        rot = rotation_about_axis([0, 0, 1], 90.0)
        rotated = (rot @ np.array([1, 0, 0, 1]))[:3]
        assert np.allclose(rotated, [0, 1, 0], atol=1e-12)


class TestCamera:
    def test_reset_frames_bounds(self):
        camera = Camera()
        bounds = Bounds(-1, 1, -1, 1, -1, 1)
        camera.reset(bounds)
        assert camera.distance > bounds.diagonal / 2
        assert np.allclose(camera.focal_point, bounds.center)

    def test_look_along_axis(self):
        camera = Camera()
        bounds = Bounds(-1, 1, -1, 1, -1, 1)
        camera.look_along_axis("+x", bounds)
        assert camera.direction[0] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            camera.look_along_axis("+w", bounds)

    def test_isometric_direction(self):
        camera = Camera().isometric_view(Bounds(-1, 1, -1, 1, -1, 1))
        d = camera.direction
        assert d[0] == pytest.approx(d[1]) == pytest.approx(d[2])

    def test_azimuth_preserves_distance(self):
        camera = Camera(position=(0, 0, 5))
        before = camera.distance
        camera.azimuth(37.0)
        assert camera.distance == pytest.approx(before)

    def test_elevation_preserves_distance(self):
        camera = Camera(position=(0, 0, 5))
        before = camera.distance
        camera.elevation(15.0)
        assert camera.distance == pytest.approx(before)

    def test_dolly(self):
        camera = Camera(position=(0, 0, 4))
        camera.dolly(2.0)
        assert camera.distance == pytest.approx(2.0)
        with pytest.raises(ValueError):
            camera.dolly(0.0)

    def test_view_projection_shapes(self):
        camera = Camera()
        assert camera.view_projection_matrix(1.5).shape == (4, 4)

    def test_parallel_projection(self):
        camera = Camera(parallel_projection=True, parallel_scale=2.0)
        camera.reset(Bounds(-1, 1, -1, 1, -1, 1))
        proj = camera.projection_matrix(1.0)
        assert proj[3, 3] == 1.0  # orthographic

    def test_copy_independent(self):
        camera = Camera()
        clone = camera.copy()
        clone.view_angle = 60.0
        assert camera.view_angle == 30.0


class TestColormapsAndTransferFunctions:
    def test_presets_available(self):
        assert "Cool to Warm" in list_colormaps()
        assert "Viridis" in list_colormaps()

    def test_get_colormap_case_insensitive(self):
        assert get_colormap("cool to warm").name == "Cool to Warm"
        with pytest.raises(KeyError):
            get_colormap("not-a-map")

    def test_lookup_table_endpoints(self):
        lut = get_colormap("Grayscale", scalar_range=(0.0, 10.0))
        assert np.allclose(lut.map_scalar(0.0), (0, 0, 0))
        assert np.allclose(lut.map_scalar(10.0), (1, 1, 1))

    def test_lookup_table_clamps(self):
        lut = get_colormap("Grayscale", scalar_range=(0.0, 1.0))
        assert np.allclose(lut.map_scalar(99.0), (1, 1, 1))

    def test_lookup_table_nan_color(self):
        lut = LookupTable(scalar_range=(0, 1))
        color = lut.map_scalars(np.array([np.nan]))[0]
        assert np.allclose(color, lut.nan_color)

    def test_rescale(self):
        lut = LookupTable()
        lut.rescale(5.0, 2.0)
        assert lut.scalar_range == (2.0, 5.0)

    def test_needs_two_control_points(self):
        with pytest.raises(ValueError):
            LookupTable(control_points=[(0.0, 1, 1, 1)])

    def test_color_transfer_function_interpolation(self):
        ctf = ColorTransferFunction()
        ctf.add_point(0.0, 0, 0, 0).add_point(1.0, 1, 1, 1)
        assert np.allclose(ctf.map_scalars([0.5])[0], [0.5, 0.5, 0.5])

    def test_color_transfer_rescale(self):
        ctf = ColorTransferFunction().add_point(0, 1, 0, 0).add_point(1, 0, 0, 1)
        ctf.rescale(10, 20)
        assert ctf.scalar_range == (10, 20)

    def test_opacity_transfer_function(self):
        otf = OpacityTransferFunction().add_point(0, 0.0).add_point(1, 1.0)
        assert otf.map_scalars([0.25])[0] == pytest.approx(0.25)

    def test_default_transfer_functions(self):
        ctf, otf = default_transfer_functions(2.0, 8.0)
        assert ctf.scalar_range == (2.0, 8.0)
        assert otf.map_scalars([2.0])[0] == pytest.approx(0.0)
        assert otf.map_scalars([8.0])[0] == pytest.approx(0.35)

    def test_from_preset_unknown(self):
        with pytest.raises(KeyError):
            ColorTransferFunction.from_preset("nope", 0, 1)


class TestFramebuffer:
    def test_clear_and_background(self):
        fb = Framebuffer(10, 5, background=(0.2, 0.3, 0.4))
        assert np.allclose(fb.color[0, 0], [0.2, 0.3, 0.4])
        fb.color[:] = 0.0
        fb.clear((1, 1, 1))
        assert np.allclose(fb.color[2, 2], [1, 1, 1])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 10)

    def test_to_uint8_and_save(self, work_dir):
        fb = Framebuffer(4, 4)
        path = fb.save(work_dir / "fb.png")
        assert path.exists()
        assert fb.to_uint8().dtype == np.uint8

    def test_coverage(self):
        fb = Framebuffer(4, 4)
        assert fb.coverage() == 0.0
        fb.depth[0, 0] = 0.5
        assert fb.coverage() == pytest.approx(1 / 16)

    def test_resized(self):
        fb = Framebuffer(4, 4)
        fb.color[0, 0] = [1, 0, 0]
        big = fb.resized(8, 8)
        assert big.width == 8 and big.height == 8
        assert np.allclose(big.color[0, 0], [1, 0, 0])


def _screen_triangle():
    # a right triangle covering the lower-left of a 20x20 image
    points = np.array([[1.0, 1.0, 0.5], [18.0, 1.0, 0.5], [1.0, 18.0, 0.5]])
    triangles = np.array([[0, 1, 2]])
    colors = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
    return points, triangles, colors


class TestRasterizer:
    def test_triangle_fills_pixels(self):
        fb = Framebuffer(20, 20)
        pts, tris, cols = _screen_triangle()
        drawn = rasterize_triangles(fb, pts, tris, cols)
        assert drawn == 1
        assert fb.coverage() > 0.2

    def test_depth_test_front_wins(self):
        fb = Framebuffer(20, 20)
        pts, tris, cols = _screen_triangle()
        rasterize_triangles(fb, pts, tris, np.ones((3, 3)) * 0.5)
        closer = pts.copy()
        closer[:, 2] = 0.1
        rasterize_triangles(fb, closer, tris, np.zeros((3, 3)))
        assert fb.color[5, 5, 0] == pytest.approx(0.0)
        farther = pts.copy()
        farther[:, 2] = 0.9
        rasterize_triangles(fb, farther, tris, np.ones((3, 3)))
        assert fb.color[5, 5, 0] == pytest.approx(0.0)  # still the closest one

    def test_color_interpolation(self):
        fb = Framebuffer(20, 20)
        pts, tris, cols = _screen_triangle()
        rasterize_triangles(fb, pts, tris, cols)
        corner = fb.color[2, 2]
        assert corner[0] > corner[2]  # near the red vertex

    def test_small_and_large_paths_agree(self):
        rng = np.random.default_rng(0)
        # many small triangles: compare tiled path against per-triangle loop by
        # scaling the same geometry (small vs large bounding boxes)
        base = rng.random((30, 3)) * 4
        tris = np.arange(30).reshape(10, 3)
        cols = rng.random((30, 3))
        fb_small = Framebuffer(64, 64)
        pts_small = base.copy()
        pts_small[:, 2] = 0.5
        rasterize_triangles(fb_small, pts_small, tris, cols)
        assert fb_small.coverage() >= 0.0  # exercises the tiny-triangle path

    def test_degenerate_triangle_skipped(self):
        fb = Framebuffer(10, 10)
        pts = np.array([[1, 1, 0], [5, 5, 0], [9, 9, 0]], dtype=float)
        drawn = rasterize_triangles(fb, pts, np.array([[0, 1, 2]]), np.ones((3, 3)))
        assert drawn in (0, 1)
        # degenerate (zero-area) triangles must not corrupt the buffer
        assert np.isfinite(fb.color).all()

    def test_offscreen_triangle_culled(self):
        fb = Framebuffer(10, 10)
        pts = np.array([[100, 100, 0], [110, 100, 0], [100, 110, 0]], dtype=float)
        rasterize_triangles(fb, pts, np.array([[0, 1, 2]]), np.ones((3, 3)))
        assert fb.coverage() == 0.0

    def test_invalid_vertices_skipped(self):
        fb = Framebuffer(10, 10)
        pts, tris, cols = _screen_triangle()
        valid = np.array([True, True, False])
        drawn = rasterize_triangles(fb, pts, tris, cols, valid_vertices=valid)
        assert drawn == 0

    def test_lines(self):
        fb = Framebuffer(20, 20)
        pts = np.array([[0, 0, 0.5], [19, 19, 0.5]])
        drawn = rasterize_lines(fb, pts, np.array([[0, 1]]), np.ones((2, 3)) * 0.3)
        assert drawn == 1
        assert fb.coverage() > 0.0

    def test_points(self):
        fb = Framebuffer(20, 20)
        pts = np.array([[10, 10, 0.5]])
        rasterize_points(fb, pts, np.array([0]), np.ones((1, 3)), point_size=3)
        assert fb.coverage() > 0.0


class TestVectorizedSplatRegression:
    """The vectorised neighborhood splat must match the historical loop.

    The loop implementation is kept in the module as the reference oracle
    (``_splat_neighborhood_loop``); fragments arriving far-to-near make the
    two provably identical (every depth write is a strict improvement), so
    the random scenes sort by decreasing depth.
    """

    def _random_points(self, rng, n, width, height):
        pts = np.column_stack(
            [
                rng.uniform(-4, width + 4, n),   # includes off-screen splats
                rng.uniform(-4, height + 4, n),
                rng.uniform(0.05, 0.95, n),
            ]
        )
        return pts[np.argsort(-pts[:, 2])]

    @pytest.mark.parametrize("point_size", [1, 2, 3, 5])
    def test_points_match_loop_reference(self, point_size):
        from repro.rendering.rasterizer import _rasterize_points_reference

        rng = np.random.default_rng(2024 + point_size)
        pts = self._random_points(rng, 400, 64, 48)
        cols = rng.uniform(0, 1, (400, 3))
        ids = np.arange(400)

        fast = Framebuffer(64, 48)
        loop = Framebuffer(64, 48)
        drawn_fast = rasterize_points(fast, pts, ids, cols, point_size=point_size)
        drawn_loop = _rasterize_points_reference(loop, pts, ids, cols, point_size=point_size)

        assert drawn_fast == drawn_loop
        np.testing.assert_array_equal(fast.color, loop.color)
        np.testing.assert_array_equal(fast.depth, loop.depth)

    @pytest.mark.parametrize("line_width", [1, 3, 5])
    def test_lines_match_loop_reference(self, line_width):
        from repro.rendering.rasterizer import _rasterize_lines_reference

        rng = np.random.default_rng(7 + line_width)
        n = 80
        pts = np.column_stack(
            [rng.uniform(0, 64, n), rng.uniform(0, 48, n), rng.uniform(0.05, 0.95, n)]
        )
        segs = rng.integers(0, n, (60, 2))
        cols = rng.uniform(0, 1, (n, 3))

        fast = Framebuffer(64, 48)
        loop = Framebuffer(64, 48)
        drawn_fast = rasterize_lines(fast, pts, segs, cols, line_width=line_width)
        drawn_loop = _rasterize_lines_reference(loop, pts, segs, cols, line_width=line_width)

        assert drawn_fast == drawn_loop
        np.testing.assert_array_equal(fast.color, loop.color)
        np.testing.assert_array_equal(fast.depth, loop.depth)

    def test_lines_with_valid_mask_and_bias_match(self):
        from repro.rendering.rasterizer import _rasterize_lines_reference

        pts = np.array([[2, 2, 0.5], [30, 20, 0.3], [10, 40, 0.7], [50, 5, 0.2]], dtype=float)
        segs = np.array([[0, 1], [1, 2], [2, 3]])
        cols = np.eye(4, 3)
        valid = np.array([True, True, True, False])

        fast = Framebuffer(64, 48)
        loop = Framebuffer(64, 48)
        drawn_fast = rasterize_lines(fast, pts, segs, cols, valid_vertices=valid, line_width=3)
        drawn_loop = _rasterize_lines_reference(
            loop, pts, segs, cols, valid_vertices=valid, line_width=3
        )
        assert drawn_fast == drawn_loop == 2
        np.testing.assert_array_equal(fast.color, loop.color)

    def test_nearer_splat_wins_regardless_of_submission_order(self):
        # the vectorised path resolves same-batch collisions nearest-first —
        # submitting (far, near) or (near, far) must both show the near color
        for order in ([0, 1], [1, 0]):
            fb = Framebuffer(16, 16)
            pts = np.array([[8, 8, 0.9], [8, 8, 0.1]], dtype=float)
            cols = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
            rasterize_points(fb, pts, np.array(order), cols, point_size=2)
            np.testing.assert_array_equal(fb.color[8, 8], [0.0, 1.0, 0.0])

    def test_empty_inputs_draw_nothing(self):
        fb = Framebuffer(8, 8)
        assert rasterize_points(fb, np.zeros((0, 3)), np.zeros(0, int), np.zeros((0, 3))) == 0
        assert rasterize_lines(fb, np.zeros((0, 3)), np.zeros((0, 2), int), np.zeros((0, 3))) == 0
        assert fb.coverage() == 0.0


class TestSceneRendering:
    def test_surface_scene(self, sphere_field, test_resolution):
        from repro.algorithms import contour

        surface = contour(sphere_field, 0.5, "scalar")
        scene = Scene()
        scene.add(Actor(surface, color_by="scalar"))
        camera = Camera().isometric_view(scene.bounds())
        fb = render_scene(scene, camera, *test_resolution)
        assert fb.coverage() > 0.02
        # colored content present (not just white background)
        assert fb.color.min() < 0.9

    def test_wireframe_scene(self, can_points_small, test_resolution):
        from repro.algorithms import delaunay_3d

        grid = delaunay_3d(can_points_small, backend="qhull")
        scene = Scene()
        scene.add(Actor(grid, representation=RepresentationType.WIREFRAME, color=(0, 0, 1)))
        camera = Camera().isometric_view(scene.bounds())
        fb = render_scene(scene, camera, *test_resolution)
        assert fb.coverage() > 0.005

    def test_points_representation(self, can_points_small, test_resolution):
        scene = Scene()
        scene.add(Actor(can_points_small, representation=RepresentationType.POINTS))
        camera = Camera().isometric_view(scene.bounds())
        fb = render_scene(scene, camera, *test_resolution)
        assert fb.coverage() > 0.0

    def test_outline_representation(self, sphere_field, test_resolution):
        scene = Scene()
        scene.add(Actor(sphere_field, representation=RepresentationType.OUTLINE))
        camera = Camera().isometric_view(scene.bounds())
        fb = render_scene(scene, camera, *test_resolution)
        assert fb.coverage() > 0.0

    def test_invisible_actor_not_rendered(self, sphere_field, test_resolution):
        from repro.algorithms import contour

        surface = contour(sphere_field, 0.5, "scalar")
        scene = Scene()
        scene.add(Actor(surface, visible=False))
        camera = Camera().isometric_view(Bounds(-1, 1, -1, 1, -1, 1))
        fb = render_scene(scene, camera, *test_resolution)
        assert fb.coverage() == 0.0

    def test_representation_from_string(self):
        assert RepresentationType.from_string("wireframe") == RepresentationType.WIREFRAME
        with pytest.raises(ValueError):
            RepresentationType.from_string("holographic")

    def test_scene_bounds_union(self, sphere_field, can_points_small):
        scene = Scene()
        scene.add(Actor(sphere_field))
        scene.add(Actor(can_points_small))
        union = scene.bounds()
        assert union.contains(can_points_small.bounds().center)
        assert union.contains(sphere_field.bounds().center)


class TestVolumeRendering:
    def test_volume_render_produces_content(self, marschner_lobb_small, test_resolution):
        camera = Camera().isometric_view(marschner_lobb_small.bounds())
        fb = volume_render(
            marschner_lobb_small, "var0", camera, *test_resolution, n_samples=40
        )
        assert fb.coverage() > 0.05
        assert fb.color.min() < 0.95

    def test_volume_scene_integration(self, marschner_lobb_small, test_resolution):
        scene = Scene()
        scene.add(
            Actor(
                marschner_lobb_small,
                representation=RepresentationType.VOLUME,
                volume_array="var0",
            )
        )
        camera = Camera().isometric_view(scene.bounds())
        fb = render_scene(scene, camera, *test_resolution, volume_samples=30)
        assert fb.coverage() > 0.05

    def test_volume_depth_is_entry_point_not_constant(
        self, marschner_lobb_small, test_resolution
    ):
        camera = Camera().isometric_view(marschner_lobb_small.bounds())
        fb = volume_render(
            marschner_lobb_small, "var0", camera, *test_resolution, n_samples=40
        )
        finite = np.isfinite(fb.depth)
        assert finite.any()
        assert not finite.all()  # background rays stay at +inf
        depths = fb.depth[finite]
        # NDC z of the per-ray box entry point: inside the clip range and
        # varying with the geometry (the old behaviour was a constant)
        assert np.abs(depths).max() <= 1.0 + 1e-9
        assert np.unique(depths).size > 10
        assert depths.std() > 0.0

    def test_volume_depth_moves_with_camera(self, marschner_lobb_small, test_resolution):
        bounds = marschner_lobb_small.bounds()
        near_cam = Camera().isometric_view(bounds)
        far_cam = near_cam.copy()
        far_cam.dolly(0.5)  # dolly < 1 moves the eye away from the focal point
        fb_near = volume_render(
            marschner_lobb_small, "var0", near_cam, *test_resolution, n_samples=40
        )
        fb_far = volume_render(
            marschner_lobb_small, "var0", far_cam, *test_resolution, n_samples=40
        )
        both = np.isfinite(fb_near.depth) & np.isfinite(fb_far.depth)
        assert both.any()
        assert not np.allclose(fb_near.depth[both], fb_far.depth[both])

    def test_missing_array_raises(self, marschner_lobb_small, test_resolution):
        camera = Camera().isometric_view(marschner_lobb_small.bounds())
        with pytest.raises(KeyError):
            volume_render(marschner_lobb_small, "missing", camera, *test_resolution)

    def test_camera_outside_looking_away_sees_nothing(self, marschner_lobb_small, test_resolution):
        camera = Camera(position=(10, 0, 0), focal_point=(20, 0, 0))
        fb = volume_render(marschner_lobb_small, "var0", camera, *test_resolution, n_samples=20)
        assert fb.coverage() == 0.0

    def test_upscaling_path(self, marschner_lobb_small):
        camera = Camera().isometric_view(marschner_lobb_small.bounds())
        fb = volume_render(
            marschner_lobb_small, "var0", camera, 600, 300, n_samples=20, max_casting_width=200
        )
        assert fb.width == 600 and fb.height == 300
