"""Tests for the demand-driven pipeline engine (``repro.engine``).

Covers the graph (topological order, cycle detection), the content-addressed
result cache and its invalidation semantics (mutating a property must
invalidate exactly the downstream subgraph — the old ``_upstream_modified``
behavior, now engine-owned), result sharing between identical pipelines, the
batch runner, and the parallel evaluation harness.
"""

import pytest

from repro.engine import (
    BatchJob,
    BatchJobError,
    CancelledJob,
    Engine,
    GraphCycleError,
    GraphError,
    Pipeline,
    PipelineGraph,
    ProcessBatchRunner,
    ResultCache,
    normalize_value,
    raise_failures,
    run_batch,
    shared_cache,
)
from repro.pvsim import simple, state
from repro.pvsim.errors import PipelineError
from repro.pvsim.pipeline import graph_from_proxy, pvsim_engine


@pytest.fixture(autouse=True)
def _fresh_session():
    state.reset_session()
    yield
    state.reset_session()


def fresh_engine() -> Engine:
    return Engine(cache=ResultCache())


SMALL_EXTENT = [-4, 4, -4, 4, -4, 4]


def build_chain(pipeline: Pipeline):
    """Wavelet → Slice → Contour, small enough to run in milliseconds."""
    src = pipeline.source("Wavelet", WholeExtent=list(SMALL_EXTENT))
    sliced = src.then("Slice", SliceType={"Origin": [0.0, 0.0, 0.0], "Normal": [1.0, 0.0, 0.0]})
    iso = sliced.then("Contour", ContourBy=["POINTS", "RTData"], Isosurfaces=[120.0])
    return src, sliced, iso


# --------------------------------------------------------------------------- #
# graph
# --------------------------------------------------------------------------- #
class TestGraph:
    def test_topological_order_upstream_first(self):
        graph = PipelineGraph()
        a = graph.add_node("Wavelet", name="a")
        b = graph.add_node("Slice", name="b", inputs=[a.id])
        c = graph.add_node("Contour", name="c", inputs=[b.id])
        order = [node.name for node in graph.topological_order([c.id])]
        assert order == ["a", "b", "c"]

    def test_order_restricted_to_target_ancestors(self):
        graph = PipelineGraph()
        a = graph.add_node("Wavelet", name="a")
        b = graph.add_node("Slice", name="b", inputs=[a.id])
        graph.add_node("Contour", name="unrelated", inputs=[a.id])
        order = [node.name for node in graph.topological_order([b.id])]
        assert order == ["a", "b"]

    def test_cycle_detection(self):
        graph = PipelineGraph()
        a = graph.add_node("Slice", name="a")
        b = graph.add_node("Contour", name="b", inputs=[a.id])
        graph.connect(b.id, a.id)
        with pytest.raises(GraphCycleError):
            graph.topological_order([b.id])

    def test_unknown_upstream_rejected(self):
        graph = PipelineGraph()
        with pytest.raises(GraphError):
            graph.add_node("Slice", inputs=["nope"])

    def test_ancestors_and_descendants(self):
        graph = PipelineGraph()
        a = graph.add_node("Wavelet", name="a")
        b = graph.add_node("Slice", name="b", inputs=[a.id])
        c = graph.add_node("Contour", name="c", inputs=[b.id])
        assert graph.ancestors(c.id) == {a.id, b.id}
        assert graph.descendants(a.id) == {b.id, c.id}


# --------------------------------------------------------------------------- #
# cache keys
# --------------------------------------------------------------------------- #
class TestNormalization:
    def test_scalar_types_stable(self):
        assert normalize_value((1, 2.0, "x")) == [1, 2.0, "x"]
        assert normalize_value({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_dataset_normalizes_by_content(self):
        from repro.data import generate_marschner_lobb

        a = generate_marschner_lobb(6)
        b = generate_marschner_lobb(6)
        assert a is not b
        assert normalize_value(a) == normalize_value(b)

    def test_cache_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.stats.evictions == 1


# --------------------------------------------------------------------------- #
# demand-driven evaluation + invalidation semantics
# --------------------------------------------------------------------------- #
class TestEvaluation:
    def test_repeated_evaluation_is_fully_cached(self):
        engine = fresh_engine()
        pipeline = Pipeline(engine)
        _src, _sliced, iso = build_chain(pipeline)
        first = iso.evaluate()
        assert engine.last_report.n_executed == 3
        second = iso.evaluate()
        assert second is first
        assert engine.last_report.n_executed == 0
        # demand-driven: a warm target costs one cache get, ancestors untouched
        assert engine.last_report.cached == [iso.node.name]

    def test_mutating_leaf_reexecutes_only_leaf(self):
        engine = fresh_engine()
        pipeline = Pipeline(engine)
        _src, _sliced, iso = build_chain(pipeline)
        iso.evaluate()
        iso.set(Isosurfaces=[130.0])
        iso.evaluate()
        assert engine.last_report.executed == [iso.node.name]
        # the slice fed the re-run from cache; the wavelet was never consulted
        assert engine.last_report.cached == ["Slice1"]

    def test_mutating_middle_reexecutes_downstream_subgraph(self):
        engine = fresh_engine()
        pipeline = Pipeline(engine)
        _src, sliced, iso = build_chain(pipeline)
        iso.evaluate()
        sliced.set(SliceType={"Origin": [0.5, 0.0, 0.0], "Normal": [1.0, 0.0, 0.0]})
        iso.evaluate()
        assert set(engine.last_report.executed) == {sliced.node.name, iso.node.name}
        assert engine.last_report.cached == ["Wavelet1"]

    def test_mutating_source_reexecutes_everything(self):
        engine = fresh_engine()
        pipeline = Pipeline(engine)
        src, _sliced, iso = build_chain(pipeline)
        iso.evaluate()
        src.set(WholeExtent=[-5, 5, -5, 5, -5, 5])
        iso.evaluate()
        assert engine.last_report.n_executed == 3

    def test_reverting_a_property_hits_the_old_entry(self):
        engine = fresh_engine()
        pipeline = Pipeline(engine)
        _src, _sliced, iso = build_chain(pipeline)
        first = iso.evaluate()
        iso.set(Isosurfaces=[130.0])
        iso.evaluate()
        iso.set(Isosurfaces=[120.0])
        assert iso.evaluate() is first

    def test_identical_pipelines_share_results(self):
        engine = fresh_engine()
        first = build_chain(Pipeline(engine))[2].evaluate()
        # an independently built, structurally identical pipeline
        second = build_chain(Pipeline(engine))[2].evaluate()
        assert second is first
        assert engine.last_report.n_executed == 0

    def test_raw_dataset_input_keys_on_content(self):
        from repro.data import generate_marschner_lobb

        engine = fresh_engine()
        pipeline = Pipeline(engine)
        out1 = (
            pipeline.dataset(generate_marschner_lobb(6))
            .then("Contour", ContourBy=["POINTS", "var0"], Isosurfaces=[0.5])
            .evaluate()
        )
        # same content, different object → still shared
        out2 = (
            Pipeline(engine)
            .dataset(generate_marschner_lobb(6))
            .then("Contour", ContourBy=["POINTS", "var0"], Isosurfaces=[0.5])
            .evaluate()
        )
        assert out2 is out1

    def test_string_group_kind_is_honored_and_keyed(self):
        """``SeedType="Line"`` must change both the execution and the cache key."""
        from repro.data import generate_disk_flow

        engine = fresh_engine()
        flow = generate_disk_flow(5, 12, 5)
        line = (
            Pipeline(engine)
            .dataset(flow)
            .then("StreamTracer", Vectors=["POINTS", "V"], SeedType="Line")
            .evaluate()
        )
        default = (
            Pipeline(engine)
            .dataset(flow)
            .then("StreamTracer", Vectors=["POINTS", "V"])
            .evaluate()
        )
        assert line is not default
        assert line.n_lines != default.n_lines

    def test_unknown_group_kind_rejected(self):
        engine = fresh_engine()
        with pytest.raises(ValueError, match="SeedType"):
            Pipeline(engine).source("Wavelet").then("StreamTracer", SeedType="Banana")

    def test_typoed_property_rejected(self):
        engine = fresh_engine()
        with pytest.raises(AttributeError, match="WholExtent"):
            Pipeline(engine).source("Wavelet", WholExtent=[-3, 3, -3, 3, -3, 3])

    def test_missing_input_raises_named_error(self):
        engine = Engine(cache=ResultCache(), error_class=PipelineError)
        pipeline = Pipeline(engine)
        node = pipeline._add("Contour", "lonely", {}, inputs=[])
        with pytest.raises(PipelineError, match="lonely"):
            node.evaluate()


# --------------------------------------------------------------------------- #
# pvsim proxies on the engine
# --------------------------------------------------------------------------- #
class TestProxyIntegration:
    def test_proxy_chain_snapshots_to_graph(self):
        wavelet = simple.Wavelet(WholeExtent=list(SMALL_EXTENT))
        contour = simple.Contour(Input=wavelet, Isosurfaces=[120.0], ContourBy=["POINTS", "RTData"])
        graph, target = graph_from_proxy(contour)
        order = [node.name for node in graph.topological_order([target])]
        assert order == [wavelet.registration_name, contour.registration_name]

    def test_proxy_invalidation_matches_old_upstream_modified_semantics(self):
        shared_cache().clear()
        wavelet = simple.Wavelet(WholeExtent=[-3, 3, -3, 3, -3, 3], XFreq=61.0)
        sliced = simple.Slice(Input=wavelet)
        contour = simple.Contour(Input=sliced, Isosurfaces=[120.0], ContourBy=["POINTS", "RTData"])
        contour.get_output()
        engine = pvsim_engine()
        assert engine.last_report.n_executed == 3

        # mutating the middle filter re-executes exactly the downstream subgraph
        sliced.SliceType.Origin = [0.25, 0.0, 0.0]
        contour.get_output()
        assert set(engine.last_report.executed) == {
            sliced.registration_name,
            contour.registration_name,
        }
        assert engine.last_report.cached == [wavelet.registration_name]

        # mutating the source re-executes everything downstream of it
        wavelet.XFreq = 62.0
        contour.get_output()
        assert engine.last_report.n_executed == 3

    def test_identical_proxy_pipelines_share_cache(self):
        def build():
            wavelet = simple.Wavelet(WholeExtent=[-3, 3, -3, 3, -3, 3], YFreq=31.0)
            return simple.Contour(
                Input=wavelet, Isosurfaces=[121.0], ContourBy=["POINTS", "RTData"]
            )

        first = build().get_output()
        state.reset_session()  # a brand-new session, like a separate script run
        second = build().get_output()
        assert second is first
        assert pvsim_engine().last_report.n_executed == 0

    def test_proxy_cycle_raises_pipeline_error(self):
        a = simple.Contour(Isosurfaces=[0.1])
        b = simple.Contour(Input=a, Isosurfaces=[0.2])
        object.__getattribute__(a, "_values")["Input"] = b
        with pytest.raises(PipelineError, match="cycle"):
            a.get_output()

    def test_pipeline_error_names_failing_proxy(self):
        sphere = simple.Sphere(Radius=1.25)
        contour = simple.Contour(
            registrationName="badContour", Input=sphere, Isosurfaces=[0.5]
        )
        with pytest.raises(PipelineError, match="badContour"):
            contour.get_output()

    def test_proxy_repr_shows_kind_name_and_changed_properties(self):
        contour = simple.Contour(registrationName="iso1", Isosurfaces=[0.5, 0.7])
        text = repr(contour)
        assert "Contour" in text
        assert "iso1" in text
        assert "Isosurfaces=[0.5, 0.7]" in text
        # defaults stay out of the repr
        assert "ComputeNormals" not in text


# --------------------------------------------------------------------------- #
# batch runner
# --------------------------------------------------------------------------- #
class TestBatch:
    def test_results_preserve_submission_order(self):
        jobs = [BatchJob(name=str(i), fn=lambda i=i: i * 10) for i in range(8)]
        results = run_batch(jobs, max_workers=4)
        assert [r.value for r in results] == [i * 10 for i in range(8)]
        assert all(r.ok for r in results)

    def test_errors_are_captured_per_job(self):
        def boom():
            raise ValueError("nope")

        results = run_batch([BatchJob("ok", lambda: 1), BatchJob("bad", boom)], max_workers=2)
        assert results[0].ok and results[0].value == 1
        assert not results[1].ok
        assert isinstance(results[1].error, ValueError)

    def test_serial_and_parallel_agree(self):
        jobs = [BatchJob(name=str(i), fn=lambda i=i: i ** 2) for i in range(6)]
        serial = [r.value for r in run_batch(jobs, max_workers=1)]
        parallel = [r.value for r in run_batch(jobs, max_workers=3)]
        assert serial == parallel

    def test_parallel_script_sessions_are_isolated(self):
        """Concurrent executor runs must not leak proxies/views across threads."""
        from repro.core.tasks import prepare_task_data
        from repro.pvsim.executor import PvPythonExecutor

        def run_session(tmp_dir, isovalue):
            prepare_task_data("isosurface", tmp_dir, small=True)
            script = (
                "from paraview.simple import *\n"
                "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
                f"contour = Contour(Input=reader, ContourBy=['POINTS', 'var0'], Isosurfaces=[{isovalue}])\n"
                "view = GetActiveViewOrCreate('RenderView')\n"
                "view.ViewSize = [64, 48]\n"
                "Show(contour, view)\n"
                "ResetCamera(view)\n"
                f"print('sources', len(GetSources()))\n"
                "SaveScreenshot('out.png', view, ImageResolution=[64, 48])\n"
            )
            return PvPythonExecutor(working_dir=tmp_dir).run(script)

        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            jobs = [
                BatchJob(
                    name=f"session{i}",
                    fn=run_session,
                    args=(Path(tmp) / f"s{i}", 0.4 + 0.05 * i),
                )
                for i in range(4)
            ]
            results = run_batch(jobs, max_workers=4)
        for outcome in results:
            assert outcome.ok
            assert outcome.value.success, outcome.value.output
            assert outcome.value.produced_screenshot
            # each session saw exactly its own two sources (reader + contour)
            assert "sources 2" in outcome.value.stdout

    def test_stop_on_error_raise_names_failing_job(self):
        """The raised error must say which job died (PipelineError-style)."""

        def boom():
            raise ValueError("nope")

        for workers in (1, 3):
            results = run_batch(
                [BatchJob("ok", lambda: 1), BatchJob("gpt-4/isosurface", boom)],
                max_workers=workers,
                stop_on_error=True,
            )
            with pytest.raises(BatchJobError, match="gpt-4/isosurface") as excinfo:
                raise_failures(results)
            assert excinfo.value.job_name == "gpt-4/isosurface"
            assert isinstance(excinfo.value.__cause__, ValueError)

    def test_cancelled_jobs_never_mask_the_real_failure(self):
        def boom():
            raise RuntimeError("root cause")

        results = run_batch(
            [BatchJob("bad", boom), BatchJob("never-ran", lambda: 1)],
            max_workers=1,
            stop_on_error=True,
        )
        assert isinstance(results[1].error, CancelledJob)
        with pytest.raises(BatchJobError, match="'bad'"):
            raise_failures(results)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_batch([BatchJob("x", lambda: 1)], executor="fiber")

    def test_registration_names_are_session_local(self):
        """Auto names (which feed error text → LLM seeds) must not depend on
        what concurrent sessions are doing."""
        from repro.pvsim.executor import run_script

        script = (
            "from paraview.simple import *\n"
            "w = Wavelet(WholeExtent=[-2, 2, -2, 2, -2, 2])\n"
            "print(w.registration_name)\n"
        )
        jobs = [BatchJob(f"n{i}", run_script, (script,)) for i in range(6)]
        results = run_batch(jobs, max_workers=3)
        names = {r.value.stdout.strip() for r in results}
        assert names == {"Wavelet1"}


# --------------------------------------------------------------------------- #
# process batch runner
# --------------------------------------------------------------------------- #
def _square(value: int) -> int:
    """Module-level so the spawn-based process pool can pickle it."""
    return value * value


def _proc_boom() -> None:
    raise ValueError("exploded in worker")


class _UnpicklableError(RuntimeError):
    def __init__(self) -> None:
        super().__init__("cannot cross the pipe")
        self.payload = lambda: None  # lambdas don't pickle


def _raise_unpicklable() -> None:
    raise _UnpicklableError()


class TestProcessBatch:
    def test_process_results_match_serial(self):
        jobs = [BatchJob(name=str(i), fn=_square, args=(i,)) for i in range(6)]
        serial = [r.value for r in run_batch(jobs, max_workers=1)]
        process = [r.value for r in run_batch(jobs, max_workers=2, executor="process")]
        assert process == serial
        assert all(r.ok for r in run_batch(jobs, max_workers=2, executor="process"))

    def test_process_error_names_failing_job(self):
        jobs = [BatchJob("fine", _square, (3,)), BatchJob("llama3:8b/slice", _proc_boom)]
        results = run_batch(jobs, max_workers=2, executor="process", stop_on_error=True)
        with pytest.raises(BatchJobError, match="llama3:8b/slice") as excinfo:
            raise_failures(results)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unpicklable_worker_error_is_sanitized(self):
        from repro.engine.batch import WorkerJobError

        results = ProcessBatchRunner(max_workers=2).run(
            [BatchJob("fine", _square, (2,)), BatchJob("bad", _raise_unpicklable)]
        )
        assert results[0].ok and results[0].value == 4
        assert isinstance(results[1].error, WorkerJobError)
        assert "cannot cross the pipe" in str(results[1].error)

    def test_serial_fallback_for_single_worker(self):
        results = ProcessBatchRunner(max_workers=1).run([BatchJob("only", _square, (5,))])
        assert results[0].value == 25

    def test_serial_fallback_restores_shared_disk_tier(self, tmp_path):
        """A degenerate process batch must not permanently reconfigure the
        caller's shared cache (it attaches the disk tier only for the run)."""
        before = shared_cache().disk
        runner = ProcessBatchRunner(max_workers=1, cache_dir=tmp_path / "cache")
        runner.run([BatchJob("only", _square, (4,))])
        assert shared_cache().disk is before


# --------------------------------------------------------------------------- #
# parallel evaluation harness
# --------------------------------------------------------------------------- #
class TestHarnessParallelism:
    def test_table_two_identical_across_worker_counts(self, tmp_path):
        from repro.eval.harness import run_table_two

        kwargs = dict(
            models=("gpt-4", "codegemma"),
            tasks=["isosurface"],
            resolution=(96, 72),
            include_chatvis=True,
        )
        serial = run_table_two(tmp_path / "serial", max_workers=1, **kwargs)
        parallel = run_table_two(tmp_path / "parallel", max_workers=4, **kwargs)
        assert serial.methods == parallel.methods
        assert serial.tasks == parallel.tasks
        assert serial.cells == parallel.cells

    def test_table_two_identical_across_process_executor(self, tmp_path):
        """Process workers (sharing one disk cache) must produce the exact
        cells serial execution does — the acceptance criterion for the
        process runner."""
        from repro.eval.harness import run_table_two

        kwargs = dict(
            models=("gpt-4",),
            tasks=["isosurface"],
            resolution=(96, 72),
            include_chatvis=True,
        )
        serial = run_table_two(tmp_path / "serial", max_workers=1, **kwargs)
        process = run_table_two(
            tmp_path / "process",
            max_workers=2,
            executor="process",
            cache_dir=tmp_path / "cache",
            **kwargs,
        )
        assert process.cells == serial.cells
        # the workers persisted their node results into the shared disk tier
        assert list((tmp_path / "cache").rglob("*.bin"))
