"""Tests for the LLM dispatch layer: budgets, cache, retries, review loop.

The acceptance-shaped tests at the bottom exercise the layer end to end
through the scenario suite: a budgeted multi-model run records per-model
spend in the report, a second run over a fresh results store is served
entirely from the completion cache (zero billed model calls), a tripped
budget raises a typed error naming the model, and the critique–repair loop
shows up as the ``Review`` method column of the Table II matrix.
"""

from __future__ import annotations

import pickle

import pytest

from repro.llm.base import CompletionResponse, Usage, user
from repro.llm.core import (
    BudgetExceededError,
    BudgetLedger,
    CompletionCache,
    DispatchRequest,
    ManagedLLM,
    RetryPolicy,
    RunBudget,
    Spend,
    completion_key,
    cost_of,
    dispatch_completions,
    pricing_for,
    run_review,
)
from repro.llm.errors import NonRetryableLLMError, RateLimitError, TransientAPIError
from repro.llm.registry import _ALIASES, available_models, get_model, register_model
from repro.scenarios import generate_scenarios
from repro.scenarios.report import build_report
from repro.scenarios.suite import REVIEW_METHOD, SuiteRunner


class FakeClient:
    """Scripted LLMClient: returns canned responses, optionally failing first."""

    def __init__(self, text="print('ok')", fail_times=0, exc_factory=TransientAPIError):
        self.model_name = "fake-model"
        self.calls = 0
        self.text = text
        self.fail_times = fail_times
        self.exc_factory = exc_factory

    def complete(self, messages, temperature=0.0, seed=None, max_tokens=None):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc_factory("synthetic failure")
        return CompletionResponse(
            text=self.text, model=self.model_name, usage=Usage(100, 50)
        )


# --------------------------------------------------------------------------- #
# budget primitives
# --------------------------------------------------------------------------- #
class TestRunBudget:
    def test_parse_all_keys(self):
        budget = RunBudget.parse("tokens=50000, calls=100, cost=1.50")
        assert budget == RunBudget(max_tokens=50000, max_calls=100, max_cost=1.5)

    def test_parse_subset_and_rejects(self):
        assert RunBudget.parse("calls=3") == RunBudget(max_calls=3)
        with pytest.raises(ValueError):
            RunBudget.parse("fuel=9")
        with pytest.raises(ValueError):
            RunBudget.parse("calls")
        with pytest.raises(ValueError):
            RunBudget(max_calls=-1)

    def test_unlimited(self):
        assert RunBudget().unlimited()
        assert not RunBudget(max_calls=1).unlimited()


class TestPricing:
    def test_gpt4_prices_above_local_models(self):
        assert pricing_for("gpt-4-sim").prompt_per_1k > pricing_for("codegemma-sim").prompt_per_1k

    def test_unknown_model_uses_default(self):
        assert cost_of("never-registered", Usage(1000, 1000)) == pytest.approx(0.003)

    def test_cost_formula(self):
        assert cost_of("gpt-4-sim", Usage(1000, 1000)) == pytest.approx(0.09)


class TestLedger:
    def test_charges_accumulate_per_model(self):
        ledger = BudgetLedger()
        ledger.charge("gpt-4-sim", Usage(100, 50))
        ledger.charge("gpt-4-sim", Usage(100, 50))
        ledger.charge("codegemma-sim", Usage(10, 10))
        assert ledger.spend().calls == 3
        assert ledger.spend("gpt-4-sim").tokens == 300
        assert set(ledger.per_model()) == {"gpt-4-sim", "codegemma-sim"}

    def test_cached_charges_are_free(self):
        ledger = BudgetLedger(RunBudget(max_calls=1))
        for _ in range(5):
            ledger.charge("gpt-4-sim", Usage(100, 50), cached=True)
        ledger.authorize("gpt-4-sim")  # cache hits never consume the budget
        assert ledger.spend().cached_calls == 5
        assert ledger.spend().cost == 0.0

    def test_authorize_trips_on_calls(self):
        ledger = BudgetLedger(RunBudget(max_calls=1))
        ledger.authorize("gpt-4-sim")
        ledger.charge("gpt-4-sim", Usage(10, 10))
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.authorize("gpt-4-sim")
        assert excinfo.value.model == "gpt-4-sim"
        assert excinfo.value.limit == "max_calls"
        assert "gpt-4-sim" in str(excinfo.value)
        assert "1" in str(excinfo.value)

    def test_authorize_trips_on_tokens_and_cost(self):
        ledger = BudgetLedger(RunBudget(max_tokens=100))
        ledger.charge("m", Usage(80, 30))
        with pytest.raises(BudgetExceededError, match="max_tokens"):
            ledger.authorize("m")
        ledger = BudgetLedger(RunBudget(max_cost=0.001))
        ledger.charge("gpt-4-sim", Usage(100, 100))
        with pytest.raises(BudgetExceededError, match="max_cost"):
            ledger.authorize("gpt-4-sim")

    def test_exhausted_probe(self):
        ledger = BudgetLedger(RunBudget(max_calls=1))
        assert not ledger.exhausted()
        ledger.charge("m", Usage(1, 1))
        assert ledger.exhausted()

    def test_merge_record_and_check_total(self):
        ledger = BudgetLedger(RunBudget(max_calls=2))
        cell = Spend()
        cell.add_call(Usage(10, 10), 0.01)
        ledger.merge_record("gpt-4-sim", cell.as_dict())
        ledger.check_total()  # 1 <= 2
        ledger.merge_record("gpt-4-sim", cell.as_dict())
        ledger.merge_record("gpt-4-sim", cell.as_dict())
        with pytest.raises(BudgetExceededError, match="<run total>"):
            ledger.check_total()

    def test_error_survives_pickle(self):
        err = BudgetExceededError("gpt-4-sim", "max_calls", RunBudget(max_calls=1), Spend())
        clone = pickle.loads(pickle.dumps(err))
        assert clone.model == "gpt-4-sim"
        assert clone.limit == "max_calls"
        assert str(clone) == str(err)

    def test_spend_dict_roundtrip(self):
        spend = Spend()
        spend.add_call(Usage(10, 5), 0.5)
        spend.add_cached(Usage(3, 3))
        spend.retries = 2
        clone = Spend.from_dict(spend.as_dict())
        assert clone.as_dict() == spend.as_dict()


# --------------------------------------------------------------------------- #
# completion cache
# --------------------------------------------------------------------------- #
class TestCompletionCache:
    def test_roundtrip_marks_cached(self, tmp_path):
        cache = CompletionCache(tmp_path / "llm")
        messages = [user("hello")]
        assert cache.get("m", messages) is None
        cache.put("m", messages, CompletionResponse("hi", "m", Usage(2, 1)))
        hit = cache.get("m", messages)
        assert hit is not None and hit.text == "hi"
        assert hit.metadata["cached"] is True
        assert len(cache) == 1

    def test_key_ignores_model_case_but_not_params(self):
        messages = [user("x")]
        assert completion_key("GPT-4", messages) == completion_key("gpt-4", messages)
        assert completion_key("m", messages) != completion_key("m", messages, temperature=0.5)
        assert completion_key("m", messages) != completion_key("m", [user("y")])


# --------------------------------------------------------------------------- #
# managed dispatch
# --------------------------------------------------------------------------- #
class TestManagedLLM:
    def test_cache_hit_skips_inner_and_budget(self, tmp_path):
        inner = FakeClient()
        ledger = BudgetLedger(RunBudget(max_calls=1))
        llm = ManagedLLM(inner, ledger=ledger, cache=CompletionCache(tmp_path / "c"))
        first = llm.complete([user("p")])
        assert first.metadata["cached"] is False
        # budget is now exhausted, but the cached replay still succeeds
        second = llm.complete([user("p")])
        assert second.metadata["cached"] is True
        assert inner.calls == 1
        assert llm.spend.calls == 1 and llm.spend.cached_calls == 1

    def test_budget_refusal_happens_before_dispatch(self):
        inner = FakeClient()
        llm = ManagedLLM(inner, ledger=BudgetLedger(RunBudget(max_calls=0)))
        with pytest.raises(BudgetExceededError):
            llm.complete([user("p")])
        assert inner.calls == 0

    def test_retryable_errors_retry_then_succeed(self):
        sleeps = []
        inner = FakeClient(fail_times=2)
        llm = ManagedLLM(inner, retry=RetryPolicy(max_attempts=3), sleep=sleeps.append)
        response = llm.complete([user("p")])
        assert response.text == "print('ok')"
        assert inner.calls == 3
        assert llm.spend.retries == 2
        assert sleeps == [0.05, 0.1]  # base_delay * backoff^(n-1)

    def test_retry_after_hint_overrides_backoff(self):
        sleeps = []
        inner = FakeClient(fail_times=1, exc_factory=lambda msg: RateLimitError(msg, retry_after=0.7))
        llm = ManagedLLM(inner, sleep=sleeps.append)
        llm.complete([user("p")])
        assert sleeps == [0.7]

    def test_retries_exhausted_raises_last_error(self):
        inner = FakeClient(fail_times=99)
        llm = ManagedLLM(inner, retry=RetryPolicy(max_attempts=2), sleep=lambda s: None)
        with pytest.raises(TransientAPIError):
            llm.complete([user("p")])
        assert inner.calls == 2

    def test_non_retryable_raises_immediately(self):
        inner = FakeClient(fail_times=1, exc_factory=NonRetryableLLMError)
        llm = ManagedLLM(inner, sleep=lambda s: None)
        with pytest.raises(NonRetryableLLMError):
            llm.complete([user("p")])
        assert inner.calls == 1

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestDispatchCompletions:
    def test_results_in_request_order(self):
        llm = ManagedLLM(FakeClient())
        requests = [DispatchRequest(messages=(user(f"q{i}"),), tag=str(i)) for i in range(6)]
        results = dispatch_completions(llm, requests, max_concurrency=3)
        assert [r.request.tag for r in results] == [str(i) for i in range(6)]
        assert all(r.ok for r in results)

    def test_budget_trip_skips_the_rest(self):
        llm = ManagedLLM(FakeClient(), ledger=BudgetLedger(RunBudget(max_calls=2)))
        requests = [DispatchRequest(messages=(user(f"q{i}"),)) for i in range(6)]
        results = dispatch_completions(llm, requests, max_concurrency=1)
        assert sum(r.ok for r in results) == 2
        failed = [r for r in results if not r.ok]
        assert all(isinstance(r.error, BudgetExceededError) for r in failed)
        assert any(r.metadata.get("skipped") for r in failed)

    def test_per_request_errors_do_not_abort_batch(self):
        llm = ManagedLLM(
            FakeClient(fail_times=1, exc_factory=NonRetryableLLMError), sleep=lambda s: None
        )
        requests = [DispatchRequest(messages=(user(f"q{i}"),)) for i in range(3)]
        results = dispatch_completions(llm, requests, max_concurrency=1)
        assert [r.ok for r in results] == [False, True, True]

    def test_rejects_bad_concurrency_and_empty_batch(self):
        assert dispatch_completions(ManagedLLM(FakeClient()), []) == []
        with pytest.raises(ValueError):
            dispatch_completions(ManagedLLM(FakeClient()), [], max_concurrency=0)


# --------------------------------------------------------------------------- #
# critique–repair review loop
# --------------------------------------------------------------------------- #
class TestReviewLoop:
    STREAMLINES_PROMPT = (
        "Load the dataset flow.vtk, create streamlines seeded along a line, "
        "render them as tubes, and save a screenshot to streams.png at 160x120."
    )

    def test_gpt4_critiques_and_repairs_its_own_script(self):
        llm = ManagedLLM(get_model("gpt-4"), ledger=BudgetLedger())
        result = run_review(llm, self.STREAMLINES_PROMPT, rounds=3)
        assert result.rounds_used >= 1
        assert result.critiques
        # the simulated frontier model converges to a clean verdict
        assert result.stopped == "clean"
        assert result.repaired

    def test_zero_rounds_is_pure_generation(self):
        llm = ManagedLLM(get_model("gpt-4"))
        result = run_review(llm, self.STREAMLINES_PROMPT, rounds=0)
        assert result.rounds_used == 0
        assert result.stopped == "rounds"
        assert not result.repaired

    def test_exhausted_ledger_stops_politely(self):
        ledger = BudgetLedger(RunBudget(max_calls=1))  # the generation spends it
        llm = ManagedLLM(get_model("gpt-4"), ledger=ledger)
        result = run_review(llm, self.STREAMLINES_PROMPT, rounds=2)
        assert result.stopped == "budget"
        assert result.rounds_used == 0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            run_review(ManagedLLM(get_model("gpt-4")), "x", rounds=-1)


# --------------------------------------------------------------------------- #
# registry alias table (satellite)
# --------------------------------------------------------------------------- #
class TestRegistryAliases:
    def test_every_alias_resolves_to_its_target(self):
        for alias, target in _ALIASES.items():
            client = get_model(alias)
            assert client.model_name == target, alias

    def test_alias_targets_are_registered_models(self):
        registered = set(available_models())
        for target in _ALIASES.values():
            assert target in registered

    def test_unknown_name_lists_models_and_aliases(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("gpt-99")
        message = str(excinfo.value)
        assert "gpt-4-sim" in message  # available models are listed
        assert "gpt-3.5-turbo" in message  # aliases are listed

    def test_register_model_lowercases_and_overwrites(self):
        try:
            register_model("MyModel", lambda: FakeClient(text="v1"))
            assert get_model("mymodel").text == "v1"
            assert get_model("MYMODEL").text == "v1"
            register_model("mymodel", lambda: FakeClient(text="v2"))
            assert get_model("MyModel").text == "v2"  # re-registration wins
            assert "mymodel" in available_models()
        finally:
            from repro.llm import registry

            registry._FACTORIES.pop("mymodel", None)


# --------------------------------------------------------------------------- #
# acceptance: the layer through the scenario suite
# --------------------------------------------------------------------------- #
MODELS = ("gpt-4", "gpt-3.5-turbo", "codegemma")


def _suite(tmp_path, store_name="results.jsonl", **kwargs):
    return SuiteRunner(
        generate_scenarios(family="contour", limit=4),
        working_dir=tmp_path / "work",
        store=tmp_path / store_name,
        resolution=(120, 90),
        **kwargs,
    )


class TestSuiteIntegration:
    def test_budgeted_multimodel_run_records_per_model_spend(self, tmp_path):
        runner = _suite(
            tmp_path,
            methods=MODELS,
            budget=RunBudget(max_tokens=500_000, max_calls=500, max_cost=10.0),
            llm_cache_dir=tmp_path / "llm-cache",
        )
        summary = runner.run()
        assert summary.executed == 12  # 4 scenarios x 3 models
        assert summary.spend is not None and summary.spend["calls"] > 0
        # one spend slice per simulated model, each with billed tokens
        assert set(summary.per_model_spend) == {
            "gpt-4-sim",
            "gpt-3.5-turbo-sim",
            "codegemma-sim",
        }
        for slice_ in summary.per_model_spend.values():
            assert slice_["calls"] > 0
            assert slice_["prompt_tokens"] > 0
        # every record carries its model, usage, and cached flag
        for record in summary.records:
            assert record["usage"]["calls"] >= 1
            assert record["cached"] is False
        # the report surfaces the spend per method, in JSON and markdown
        report = build_report(summary.records)
        assert set(report.spend) == set(MODELS)
        assert report.to_json()["spend"]["gpt-4"]["cost"] > 0
        assert "LLM spend" in report.to_markdown()
        assert "spend" in summary.describe()

    def test_second_run_is_served_entirely_from_the_completion_cache(self, tmp_path):
        cache_dir = tmp_path / "llm-cache"
        _suite(tmp_path, methods=MODELS, llm_cache_dir=cache_dir).run()
        # a *fresh* results store forces every cell to execute again; the
        # completion cache must supply every model call
        rerun = _suite(
            tmp_path, store_name="fresh.jsonl", methods=MODELS, llm_cache_dir=cache_dir
        ).run()
        assert rerun.executed == 12
        assert rerun.spend["calls"] == 0  # zero billed model calls
        assert rerun.spend["cached_calls"] > 0
        for record in rerun.records:
            assert record["cached"] is True
            assert record["usage"]["calls"] == 0

    def test_exceeding_the_budget_aborts_with_a_typed_error(self, tmp_path):
        runner = _suite(tmp_path, methods=("gpt-4",), budget=RunBudget(max_calls=1))
        with pytest.raises(BudgetExceededError) as excinfo:
            runner.run()
        assert excinfo.value.model == "gpt-4-sim"
        assert excinfo.value.spend.calls >= 1
        assert "gpt-4-sim" in str(excinfo.value)

    def test_review_is_a_method_column_in_the_suite_report(self, tmp_path):
        runner = _suite(tmp_path, methods=(REVIEW_METHOD, "gpt-4"), review_rounds=1)
        summary = runner.run()
        review_records = [r for r in summary.records if r["method"] == REVIEW_METHOD]
        assert len(review_records) == 4
        for record in review_records:
            assert record["review_stopped"] in ("clean", "rounds", "budget")
            assert record["review_rounds"] <= 1
        markdown = build_report(summary.records).to_markdown()
        assert REVIEW_METHOD in markdown

    def test_review_is_a_method_column_in_table_two(self, tmp_path):
        from repro.eval.harness import run_table_two

        result = run_table_two(
            tmp_path,
            models=["gpt-4"],
            tasks=["isosurface"],
            resolution=(120, 90),
            include_chatvis=False,
            include_review=True,
            review_rounds=1,
        )
        assert REVIEW_METHOD in result.methods
        cell = result.cell(REVIEW_METHOD, "isosurface")
        assert cell is not None
