"""Unit tests for ImageData, PolyData and UnstructuredGrid."""

import numpy as np
import pytest

from repro.datamodel import CellType, ImageData, PolyData, UnstructuredGrid
from repro.datamodel.arrays import AssociationError


class TestImageData:
    def test_point_and_cell_counts(self):
        img = ImageData((3, 4, 5))
        assert img.n_points == 60
        assert img.n_cells == 2 * 3 * 4

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ImageData((0, 2, 2))
        with pytest.raises(ValueError):
            ImageData((2, 2))

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            ImageData((2, 2, 2), spacing=(1, 0, 1))

    def test_point_id_roundtrip(self):
        img = ImageData((3, 4, 5))
        for pid in (0, 7, 33, 59):
            i, j, k = img.point_index(pid)
            assert img.point_id(i, j, k) == pid

    def test_point_id_out_of_range(self):
        img = ImageData((2, 2, 2))
        with pytest.raises(IndexError):
            img.point_id(2, 0, 0)
        with pytest.raises(IndexError):
            img.point_index(8)

    def test_points_ordering_x_fastest(self):
        img = ImageData((2, 2, 1), origin=(0, 0, 0), spacing=(1, 1, 1))
        pts = img.get_points()
        assert np.allclose(pts[0], [0, 0, 0])
        assert np.allclose(pts[1], [1, 0, 0])
        assert np.allclose(pts[2], [0, 1, 0])

    def test_bounds(self):
        img = ImageData((3, 3, 3), origin=(-1, -1, -1), spacing=(1, 1, 1))
        assert img.bounds().as_tuple() == (-1, 1, -1, 1, -1, 1)

    def test_scalar_volume_roundtrip(self):
        img = ImageData((3, 4, 5))
        vol = np.arange(60, dtype=float).reshape(5, 4, 3)
        img.set_scalar_volume("f", vol)
        assert np.allclose(img.scalar_volume("f"), vol)
        assert img.point_data["f"].n_tuples == 60

    def test_scalar_volume_shape_mismatch(self):
        img = ImageData((3, 3, 3))
        with pytest.raises(ValueError):
            img.set_scalar_volume("f", np.zeros((2, 3, 3)))

    def test_vector_volume_roundtrip(self):
        img = ImageData((2, 2, 2))
        vol = np.random.default_rng(0).random((2, 2, 2, 3))
        img.set_vector_volume("v", vol)
        assert np.allclose(img.vector_volume("v"), vol)

    def test_scalar_volume_requires_scalar(self):
        img = ImageData((2, 2, 2))
        img.set_vector_volume("v", np.zeros((2, 2, 2, 3)))
        with pytest.raises(ValueError):
            img.scalar_volume("v")

    def test_world_to_continuous_index(self):
        img = ImageData((3, 3, 3), origin=(1, 1, 1), spacing=(2, 2, 2))
        idx = img.world_to_continuous_index([[2.0, 1.0, 5.0]])
        assert np.allclose(idx[0], [0.5, 0.0, 2.0])

    def test_add_point_array_validates_count(self):
        img = ImageData((2, 2, 2))
        with pytest.raises(AssociationError):
            img.add_point_array("bad", np.zeros(5))

    def test_copy_structure_has_no_arrays(self):
        img = ImageData((2, 2, 2))
        img.set_scalar_volume("f", np.zeros((2, 2, 2)))
        assert img.copy_structure().point_data.names() == []

    def test_scalar_range(self):
        img = ImageData((2, 2, 2))
        img.add_point_array("f", np.arange(8, dtype=float))
        assert img.scalar_range("f") == (0.0, 7.0)
        with pytest.raises(KeyError):
            img.scalar_range("missing")


class TestPolyData:
    def test_empty(self):
        poly = PolyData()
        assert poly.is_empty
        assert poly.n_cells == 0

    def test_from_points_only(self):
        poly = PolyData.from_points_only(np.random.rand(5, 3))
        assert poly.n_verts == 5
        assert poly.n_cells == 5

    def test_triangle_counts_and_validation(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        poly = PolyData(points=pts, triangles=[[0, 1, 2]])
        assert poly.n_triangles == 1
        with pytest.raises(IndexError):
            PolyData(points=pts, triangles=[[0, 1, 5]])

    def test_line_validation(self):
        pts = np.zeros((3, 3))
        with pytest.raises(ValueError):
            PolyData(points=pts, lines=[[0]])
        with pytest.raises(IndexError):
            PolyData(points=pts, lines=[[0, 9]])

    def test_triangle_normals_unit_length(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        poly = PolyData(points=pts, triangles=[[0, 1, 2]])
        n = poly.triangle_normals()
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)
        assert np.allclose(np.abs(n[0]), [0, 0, 1])

    def test_point_normals_shape(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=float)
        poly = PolyData(points=pts, triangles=[[0, 1, 2], [1, 3, 2]])
        assert poly.point_normals().shape == (4, 3)

    def test_surface_area(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        poly = PolyData(points=pts, triangles=[[0, 1, 2]])
        assert poly.surface_area() == pytest.approx(0.5)

    def test_line_segments(self):
        pts = np.zeros((4, 3))
        poly = PolyData(points=pts, lines=[[0, 1, 2], [2, 3]])
        segs = poly.line_segments()
        assert segs.shape == (3, 2)

    def test_edges_unique(self):
        pts = np.zeros((4, 3))
        poly = PolyData(points=pts, triangles=[[0, 1, 2], [0, 2, 3]])
        edges = poly.edges()
        # shared edge (0,2) counted once
        assert edges.shape[0] == 5

    def test_merged_with_offsets_connectivity(self):
        a = PolyData(points=[[0, 0, 0], [1, 0, 0], [0, 1, 0]], triangles=[[0, 1, 2]])
        a.add_point_array("s", [1.0, 2.0, 3.0])
        b = PolyData(points=[[0, 0, 1], [1, 0, 1], [0, 1, 1]], triangles=[[0, 1, 2]])
        b.add_point_array("s", [4.0, 5.0, 6.0])
        merged = a.merged_with(b)
        assert merged.n_points == 6
        assert merged.n_triangles == 2
        assert merged.triangles[1].min() >= 3
        assert np.allclose(merged.point_data["s"].as_scalar(), [1, 2, 3, 4, 5, 6])

    def test_merged_drops_uncommon_arrays(self):
        a = PolyData(points=[[0, 0, 0]])
        a.add_point_array("only_a", [1.0])
        b = PolyData(points=[[1, 1, 1]])
        merged = a.merged_with(b)
        assert "only_a" not in merged.point_data

    def test_transformed_translation(self):
        poly = PolyData(points=[[1, 2, 3]])
        m = np.eye(4)
        m[:3, 3] = [10, 0, 0]
        moved = poly.transformed(m)
        assert np.allclose(moved.points[0], [11, 2, 3])

    def test_transformed_requires_4x4(self):
        with pytest.raises(ValueError):
            PolyData(points=[[0, 0, 0]]).transformed(np.eye(3))

    def test_copy_independent(self):
        poly = PolyData(points=[[0, 0, 0]])
        other = poly.copy()
        other.points[0, 0] = 9.0
        assert poly.points[0, 0] == 0.0


class TestUnstructuredGrid:
    def _tet_grid(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        return grid

    def test_add_cell_and_counts(self):
        grid = self._tet_grid()
        assert grid.n_cells == 1
        assert grid.cell(0)[0] == CellType.TETRA

    def test_add_cell_validates_ids(self):
        grid = UnstructuredGrid(np.zeros((2, 3)))
        with pytest.raises(IndexError):
            grid.add_cell(CellType.LINE, (0, 5))

    def test_add_cell_validates_size(self):
        grid = UnstructuredGrid(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            grid.add_cell(CellType.TETRA, (0, 1, 2))

    def test_cells_of_type(self):
        grid = self._tet_grid()
        assert grid.cells_of_type(CellType.TETRA).shape == (1, 4)
        assert grid.cells_of_type(CellType.TRIANGLE).size == 0

    def test_extract_surface_of_tet(self):
        surface = self._tet_grid().extract_surface()
        assert surface.n_triangles == 4

    def test_extract_surface_shared_faces_removed(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=float
        )
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        grid.add_cell(CellType.TETRA, (1, 2, 3, 4))
        surface = grid.extract_surface()
        # two tets sharing one face: 8 faces total, 2 internal -> 6 boundary
        assert surface.n_triangles == 6

    def test_extract_surface_keeps_point_data(self):
        grid = self._tet_grid()
        grid.add_point_array("s", [0.0, 1.0, 2.0, 3.0])
        surface = grid.extract_surface()
        assert "s" in surface.point_data

    def test_tetrahedralized_hex(self):
        pts = np.array(
            [
                [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
                [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
            ],
            dtype=float,
        )
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.HEXAHEDRON, tuple(range(8)))
        tet_grid = grid.tetrahedralized()
        assert tet_grid.n_cells == 5
        assert all(t == CellType.TETRA for t in tet_grid.cell_types())

    def test_edges(self):
        grid = self._tet_grid()
        assert grid.edges().shape == (6, 2)

    def test_cell_centers(self):
        grid = self._tet_grid()
        centers = grid.cell_centers()
        assert np.allclose(centers[0], [0.25, 0.25, 0.25])

    def test_as_point_cloud(self):
        grid = self._tet_grid()
        grid.add_point_array("s", [0.0, 1.0, 2.0, 3.0])
        cloud = grid.as_point_cloud()
        assert cloud.n_verts == 4
        assert "s" in cloud.point_data

    def test_has_volumetric_cells(self):
        grid = self._tet_grid()
        assert grid.has_volumetric_cells()
        empty = UnstructuredGrid(np.zeros((1, 3)))
        empty.add_cell(CellType.VERTEX, (0,))
        assert not empty.has_volumetric_cells()

    def test_copy_independent(self):
        grid = self._tet_grid()
        grid.add_point_array("s", [0.0, 1.0, 2.0, 3.0])
        other = grid.copy()
        other.points[0, 0] = 5.0
        assert grid.points[0, 0] == 0.0
        assert other.n_cells == grid.n_cells
