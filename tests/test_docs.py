"""Docs guardrails: markdown links resolve, ``repro.llm`` stays documented.

Two checks that CI's ``docs`` job also runs (via ``scripts/check_docs.py``
and ruff's ``D1`` rules), mirrored here so they fail locally even where
ruff isn't installed and before any workflow runs:

* every relative markdown link in README / ROADMAP / ``docs/*.md`` points
  at a real file;
* every module, public class, and public function/method under
  ``src/repro/llm/`` carries a docstring (the pydocstyle ``D1xx`` subset
  enabled for that tree in ``pyproject.toml``, minus the globally-ignored
  ``D105`` magic methods and ``D107`` ``__init__``).

The third docs check — actually executing every ```bash block in
``docs/evaluating.md`` — is too slow for tier-1 and runs only in CI:
``python scripts/check_docs.py``.
"""

from __future__ import annotations

import ast
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"
LLM_ROOT = REPO_ROOT / "src" / "repro" / "llm"


class TestMarkdownLinks:
    def test_docs_exist(self):
        for name in ("architecture.md", "llm.md", "evaluating.md"):
            assert (REPO_ROOT / "docs" / name).exists(), name

    def test_readme_links_into_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for name in ("docs/architecture.md", "docs/evaluating.md", "docs/llm.md"):
            assert name in readme, f"README no longer links {name}"

    def test_all_relative_links_resolve(self):
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--links-only"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


def _iter_public_defs(tree: ast.Module):
    """Yield (name, node) for every D1-checked definition in a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        # D105 (magic) and D107 (__init__) are ignored repo-wide
                        if sub.name.startswith("_"):
                            continue
                        yield f"{node.name}.{sub.name}", sub


class TestLlmDocstringAudit:
    """AST mirror of the ruff ``D1`` selection scoped to ``src/repro/llm/``."""

    def test_every_module_public_class_and_function_is_documented(self):
        missing = []
        for py in sorted(LLM_ROOT.rglob("*.py")):
            rel = py.relative_to(REPO_ROOT)
            tree = ast.parse(py.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(f"{rel}: module docstring (D100)")
            for name, node in _iter_public_defs(tree):
                if ast.get_docstring(node) is None:
                    missing.append(f"{rel}: {name}")
        assert not missing, "undocumented public names in repro.llm:\n" + "\n".join(missing)

    def test_every_llm_module_declares_its_public_api(self):
        missing = []
        for py in sorted(LLM_ROOT.rglob("*.py")):
            tree = ast.parse(py.read_text())
            names = {
                t.id
                for node in tree.body
                if isinstance(node, ast.Assign)
                for t in node.targets
                if isinstance(t, ast.Name)
            }
            if "__all__" not in names:
                missing.append(str(py.relative_to(REPO_ROOT)))
        assert not missing, "__all__ missing in: " + ", ".join(missing)

    def test_pyproject_keeps_d1_enabled_for_llm(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert '"D1"' in pyproject.split("[tool.ruff.lint]", 1)[1]
        # the llm tree must not appear in the per-file D1 opt-outs
        ignores = pyproject.split("[tool.ruff.lint.per-file-ignores]", 1)[1]
        ignores = ignores.split("[tool.ruff.lint.pydocstyle]", 1)[0]
        assert "src/repro/llm" not in ignores
