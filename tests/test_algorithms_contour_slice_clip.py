"""Tests for level-set extraction, contouring, slicing and clipping."""

import numpy as np
import pytest

from repro.algorithms import (
    clip_dataset,
    clip_polydata,
    clip_unstructured,
    contour,
    contour_lines,
    slice_dataset,
)
from repro.algorithms.implicit import Box, Plane, Sphere, plane_signed_distance
from repro.algorithms.isosurface import tetrahedra_of_dataset
from repro.datamodel import CellType, ImageData, UnstructuredGrid


class TestImplicit:
    def test_plane_signed_distance(self):
        d = plane_signed_distance([[1, 0, 0], [-2, 0, 0]], origin=(0, 0, 0), normal=(1, 0, 0))
        assert np.allclose(d, [1, -2])

    def test_plane_normal_normalised(self):
        d = plane_signed_distance([[2, 0, 0]], origin=(0, 0, 0), normal=(10, 0, 0))
        assert d[0] == pytest.approx(2.0)

    def test_plane_axis_aligned(self):
        plane = Plane.axis_aligned("y", 2.0)
        assert plane.evaluate(np.array([[0, 3, 0]]))[0] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            Plane.axis_aligned("w")

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            Plane(normal=(0, 0, 0)).evaluate(np.zeros((1, 3)))

    def test_sphere(self):
        sphere = Sphere(center=(0, 0, 0), radius=2.0)
        vals = sphere.evaluate(np.array([[0, 0, 0], [3, 0, 0]]))
        assert vals[0] == pytest.approx(-2.0)
        assert vals[1] == pytest.approx(1.0)

    def test_box(self):
        box = Box(bounds=(-1, 1, -1, 1, -1, 1))
        vals = box.evaluate(np.array([[0, 0, 0], [2, 0, 0]]))
        assert vals[0] < 0 < vals[1]


class TestTetrahedralDecomposition:
    def test_image_data_tet_count(self):
        img = ImageData((3, 3, 3))
        tets = tetrahedra_of_dataset(img)
        assert tets.shape == (8 * 6, 4)
        assert tets.max() < img.n_points

    def test_single_slab_has_no_tets(self):
        img = ImageData((3, 3, 1))
        assert tetrahedra_of_dataset(img).shape[0] == 0

    def test_unstructured_mixed_cells(self):
        grid = UnstructuredGrid(np.random.default_rng(0).random((8, 3)))
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        grid.add_cell(CellType.VERTEX, (7,))
        assert tetrahedra_of_dataset(grid).shape == (1, 4)

    def test_freudenthal_covers_cell_volume(self):
        img = ImageData((2, 2, 2), spacing=(1, 1, 1))
        tets = tetrahedra_of_dataset(img)
        pts = img.get_points()
        total = 0.0
        for tet in tets:
            p0, p1, p2, p3 = pts[tet]
            total += abs(np.dot(np.cross(p1 - p0, p2 - p0), p3 - p0)) / 6.0
        assert total == pytest.approx(1.0)


class TestContour:
    def test_sphere_isosurface_radius(self, sphere_field):
        # the 0.5 level set of 1 - |p| is the sphere of radius 0.5
        surface = contour(sphere_field, 0.5, "scalar")
        assert surface.n_triangles > 100
        radii = np.linalg.norm(surface.points, axis=1)
        assert np.all(np.abs(radii - 0.5) < 0.05)

    def test_normals_attached(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        assert "Normals" in surface.point_data

    def test_scalar_interpolated_onto_surface(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        values = surface.point_data["scalar"].as_scalar()
        assert np.allclose(values, 0.5, atol=1e-6)

    def test_empty_result_outside_range(self, sphere_field):
        surface = contour(sphere_field, 99.0, "scalar")
        assert surface.is_empty

    def test_multiple_isovalues_merge(self, sphere_field):
        single = contour(sphere_field, 0.5, "scalar")
        double = contour(sphere_field, [0.3, 0.5], "scalar")
        assert double.n_triangles > single.n_triangles

    def test_default_array_selection(self, sphere_field):
        assert not contour(sphere_field, 0.5).is_empty

    def test_missing_array_raises(self, sphere_field):
        with pytest.raises(KeyError):
            contour(sphere_field, 0.5, "nope")

    def test_no_isovalues_raises(self, sphere_field):
        with pytest.raises(ValueError):
            contour(sphere_field, [], "scalar")

    def test_contour_on_unstructured_grid(self):
        grid = UnstructuredGrid(
            np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        )
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        grid.add_point_array("f", [0.0, 1.0, 1.0, 1.0])
        surface = contour(grid, 0.5, "f")
        assert surface.n_triangles == 1

    def test_marschner_lobb_isosurface_nonempty(self, marschner_lobb_small):
        surface = contour(marschner_lobb_small, 0.5, "var0")
        assert surface.n_triangles > 0
        assert surface.bounds().diagonal <= marschner_lobb_small.bounds().diagonal * 1.01

    def test_contour_lines_on_slice(self, marschner_lobb_small):
        cut = slice_dataset(marschner_lobb_small, origin=(0, 0, 0), normal=(1, 0, 0))
        lines = contour_lines(cut, 0.5, "var0")
        assert lines.n_lines > 0
        assert lines.n_triangles == 0
        # contour points stay in the slicing plane
        assert np.all(np.abs(lines.points[:, 0]) < 1e-8)


class TestSlice:
    def test_slice_plane_position(self, sphere_field):
        cut = slice_dataset(sphere_field, origin=(0.25, 0, 0), normal=(1, 0, 0))
        assert cut.n_triangles > 0
        assert np.allclose(cut.points[:, 0], 0.25, atol=1e-9)

    def test_slice_carries_point_data(self, sphere_field):
        cut = slice_dataset(sphere_field, origin=(0, 0, 0), normal=(0, 0, 1))
        assert "scalar" in cut.point_data

    def test_slice_outside_bounds_empty(self, sphere_field):
        cut = slice_dataset(sphere_field, origin=(10, 0, 0), normal=(1, 0, 0))
        assert cut.is_empty

    def test_slice_of_surface_gives_lines(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        section = slice_dataset(surface, origin=(0, 0, 0), normal=(0, 0, 1))
        assert section.n_lines > 0

    def test_slice_unstructured(self, disk_flow_small):
        cut = slice_dataset(disk_flow_small, origin=(0, 0, 0), normal=(0, 0, 1))
        assert cut.n_triangles > 0
        assert "Temp" in cut.point_data


class TestClip:
    def test_clip_polydata_keeps_negative_side(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        clipped = clip_polydata(surface, origin=(0, 0, 0), normal=(1, 0, 0), keep_negative=True)
        assert clipped.n_triangles > 0
        assert clipped.points[:, 0].max() <= 1e-6

    def test_clip_polydata_invert(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        clipped = clip_polydata(surface, origin=(0, 0, 0), normal=(1, 0, 0), keep_negative=False)
        assert clipped.points[:, 0].min() >= -1e-6

    def test_clip_preserves_point_data(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        clipped = clip_polydata(surface, keep_negative=True)
        assert "scalar" in clipped.point_data
        assert clipped.point_data["scalar"].n_tuples == clipped.n_points

    def test_clip_areas_sum_to_original(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        left = clip_polydata(surface, keep_negative=True)
        right = clip_polydata(surface, keep_negative=False)
        total = left.surface_area() + right.surface_area()
        assert total == pytest.approx(surface.surface_area(), rel=1e-6)

    def test_clip_unstructured_tets(self):
        pts = np.array(
            [[-1, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [0, -1, 0]], dtype=float
        )
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        grid.add_cell(CellType.TETRA, (0, 1, 4, 3))
        grid.add_point_array("f", np.arange(5, dtype=float))
        clipped = clip_unstructured(grid, origin=(0, 0, 0), normal=(1, 0, 0), keep_negative=True)
        assert clipped.n_cells > 0
        assert clipped.points[:, 0].max() <= 1e-9
        assert "f" in clipped.point_data

    def test_clip_unstructured_keeps_vertices(self):
        grid = UnstructuredGrid(np.array([[-1, 0, 0], [1, 0, 0]], dtype=float))
        grid.add_cell(CellType.VERTEX, (0,))
        grid.add_cell(CellType.VERTEX, (1,))
        clipped = clip_unstructured(grid, keep_negative=True)
        assert clipped.n_cells == 1

    def test_clip_whole_tet_inside(self):
        pts = np.array([[-3, 0, 0], [-2, 0, 0], [-2, 1, 0], [-2, 0, 1]], dtype=float)
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        clipped = clip_unstructured(grid, keep_negative=True)
        assert clipped.n_cells == 1

    def test_clip_whole_tet_outside(self):
        pts = np.array([[3, 0, 0], [2, 0, 0], [2, 1, 0], [2, 0, 1]], dtype=float)
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))
        clipped = clip_unstructured(grid, keep_negative=True)
        assert clipped.n_cells == 0

    def test_clip_volume_conserved_for_split_tet(self):
        pts = np.array([[-1, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        grid = UnstructuredGrid(pts)
        grid.add_cell(CellType.TETRA, (0, 1, 2, 3))

        def total_volume(g):
            vol = 0.0
            for _t, conn in g.cells():
                p0, p1, p2, p3 = g.points[list(conn)]
                vol += abs(np.dot(np.cross(p1 - p0, p2 - p0), p3 - p0)) / 6.0
            return vol

        left = clip_unstructured(grid, keep_negative=True)
        right = clip_unstructured(grid, keep_negative=False)
        assert total_volume(left) + total_volume(right) == pytest.approx(total_volume(grid), rel=1e-9)

    def test_clip_dataset_dispatch_image(self, sphere_field):
        clipped = clip_dataset(sphere_field, origin=(0, 0, 0), normal=(0, 1, 0))
        assert isinstance(clipped, UnstructuredGrid)
        assert clipped.n_cells > 0

    def test_clip_with_sphere_function(self, sphere_field):
        surface = contour(sphere_field, 0.5, "scalar")
        clipped = clip_polydata(surface, function=Sphere(center=(0, 0, 0), radius=0.4))
        assert clipped.n_triangles < surface.n_triangles
