"""Tests for the procedural scenario-suite subsystem.

Covers the grammar (spec → expansion round-trip determinism, prompt
parsing), cross-process seed/key stability, the resumable suite runner
(warm runs execute nothing, resume-after-kill executes only missing
cells), synthesized ground truths, and the report generator.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.tasks import prepare_task_data
from repro.pvsim.executor import PvPythonExecutor
from repro.scenarios import (
    PHRASINGS,
    ScenarioSpec,
    SuiteRunner,
    SuiteStore,
    build_report,
    builtin_specs,
    canonical_scenarios,
    chain_specs,
    generate_scenarios,
    load_report,
    strip_timing,
)
from repro.scenarios.spec import STRUCTURAL_KINDS, ViewSpec, isosurface, ops
from repro.scenarios.templates import render_prompt


@pytest.fixture(scope="module")
def catalog():
    return generate_scenarios()


# --------------------------------------------------------------------------- #
# grammar and expansion
# --------------------------------------------------------------------------- #
class TestGrammar:
    def test_catalog_size_and_uniqueness(self, catalog):
        assert len(builtin_specs()) >= 10
        assert len(catalog) >= 40
        names = [s.name for s in catalog]
        assert len(set(names)) == len(names)
        keys = [s.key() for s in catalog]
        assert len(set(keys)) == len(keys)

    def test_catalog_covers_all_families(self, catalog):
        assert {s.family for s in catalog} == {"contour", "slicing", "volume", "geometry", "flow"}
        assert {s.phrasing for s in catalog} >= set(PHRASINGS)

    def test_expansion_is_deterministic(self, catalog):
        again = generate_scenarios()
        assert [s.name for s in again] == [s.name for s in catalog]
        assert [s.key() for s in again] == [s.key() for s in catalog]
        assert [s.task.user_prompt for s in again] == [s.task.user_prompt for s in catalog]
        assert [s.seed for s in again] == [s.seed for s in catalog]

    def test_every_prompt_round_trips_through_the_parser(self, catalog):
        for scenario in catalog:
            plan = scenario.parsed_plan()
            parsed = [op.kind for op in plan.operations if op.kind in STRUCTURAL_KINDS]
            assert parsed == scenario.structural_kinds(), scenario.name
            assert plan.filenames() == [scenario.dataset], scenario.name
            assert plan.screenshot_filename() == scenario.task.screenshot, scenario.name
            assert plan.resolution() == tuple(scenario.resolution), scenario.name

    def test_phrasings_differ_in_text_but_not_in_plan(self):
        scenarios = generate_scenarios(spec="iso-phrasings")
        assert len(scenarios) == len(PHRASINGS)
        prompts = [s.task.user_prompt for s in scenarios]
        assert len(set(prompts)) == len(prompts)
        plans = [
            [op.kind for op in s.parsed_plan().operations if op.kind in STRUCTURAL_KINDS]
            for s in scenarios
        ]
        assert all(plan == plans[0] for plan in plans)

    def test_key_changes_with_any_axis(self, catalog):
        scenario = catalog[0]
        other = generate_scenarios(spec="iso-values")[1]
        assert scenario.key() != other.key()

    def test_filters(self):
        flow = generate_scenarios(family="flow")
        assert flow and all(s.family == "flow" for s in flow)
        paper = generate_scenarios(phrasing="paper")
        assert paper and all(s.phrasing == "paper" for s in paper)
        assert len(generate_scenarios(limit=3)) == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty axis"):
            ScenarioSpec(name="bad", family="contour", datasets=(), operations=())

    def test_name_collisions_rejected(self):
        spec = builtin_specs()[0]
        with pytest.raises(ValueError, match="collision"):
            chain_specs([spec, spec])

    def test_combinators_produce_new_axes(self):
        spec = builtin_specs()[0]
        widened = spec.with_phrasings(*PHRASINGS)
        assert widened.n_scenarios() == spec.n_scenarios() // len(spec.phrasings) * len(PHRASINGS)
        single = spec.with_views(ViewSpec("isometric"))
        assert all(s.view == "isometric" for s in single.expand())

    def test_unknown_phrasing_raises(self):
        with pytest.raises(KeyError, match="unknown phrasing"):
            render_prompt("x.vtk", (isosurface(),), ViewSpec(), "x.png", phrasing="haiku")

    def test_ops_labels_reach_scenario_names(self):
        label, steps = ops("v0p5", isosurface(value=0.5))
        assert label == "v0p5" and steps[0].get("value") == 0.5
        assert any("v0p5" in s.name for s in generate_scenarios(spec="iso-values"))


class TestCanonicalScenarios:
    def test_wrap_the_verbatim_tasks(self):
        scenarios = canonical_scenarios()
        assert [s.name for s in scenarios] == [
            "isosurface", "slice_contour", "volume_render", "delaunay", "streamlines",
        ]
        from repro.core.tasks import CANONICAL_TASKS

        for scenario in scenarios:
            assert scenario.task is CANONICAL_TASKS[scenario.name]
            assert scenario.phrasing == "verbatim"

    def test_subset_selection(self):
        assert [s.name for s in canonical_scenarios(["delaunay"])] == ["delaunay"]


# --------------------------------------------------------------------------- #
# seed / key stability across processes
# --------------------------------------------------------------------------- #
class TestSeedStability:
    def test_keys_and_seeds_stable_across_processes(self, catalog):
        src_root = str(Path(repro.__file__).parents[1])
        code = (
            "from repro.scenarios import generate_scenarios;"
            "print('\\n'.join(f'{s.key()} {s.seed}' for s in generate_scenarios()))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
        ).stdout.strip().splitlines()
        assert out == [f"{s.key()} {s.seed}" for s in catalog]


# --------------------------------------------------------------------------- #
# synthesized ground truth
# --------------------------------------------------------------------------- #
class TestScenarioGroundTruth:
    @pytest.mark.parametrize("family", ["contour", "slicing", "volume", "geometry", "flow"])
    def test_ground_truth_runs_per_family(self, family, work_dir):
        scenario = generate_scenarios(family=family)[0]
        prepare_task_data(scenario.task, work_dir)
        script = scenario.ground_truth()
        result = PvPythonExecutor(working_dir=work_dir).run(script, script_name="gt.py")
        assert result.success, result.output
        assert result.produced_screenshot


# --------------------------------------------------------------------------- #
# the suite runner and its store
# --------------------------------------------------------------------------- #
def _small_suite(work_dir: Path, n=4, store_name="results.jsonl", **kwargs) -> SuiteRunner:
    return SuiteRunner(
        generate_scenarios(limit=n),
        methods=("gpt-4",),
        working_dir=work_dir / "work",
        store=work_dir / store_name,
        **kwargs,
    )


class TestSuiteRunner:
    def test_terse_px_phrasing_reaches_the_model_verbatim(self, work_dir):
        """Without a resolution override, template phrasings are not normalized away."""
        from repro.eval.harness import run_unassisted

        scenario = next(
            s for s in generate_scenarios(spec="iso-phrasings") if s.phrasing == "terse"
        )
        assert "px" in scenario.task.user_prompt
        prepare_task_data(scenario.task, work_dir)
        script, result = run_unassisted("gpt-4", scenario.task, work_dir, resolution=None)
        # the model parsed '160x120 px' itself (the nl_parser px path, live)
        assert "ImageResolution=[160, 120]" in script
        assert result.produced_screenshot

    def test_duplicate_scenario_names_rejected(self, work_dir):
        scenario = generate_scenarios(limit=1)[0]
        with pytest.raises(ValueError, match="duplicate scenario names"):
            SuiteRunner([scenario, scenario], working_dir=work_dir)
        with pytest.raises(ValueError, match="duplicate methods"):
            SuiteRunner([scenario], methods=("gpt-4", "gpt-4"), working_dir=work_dir)

    def test_cold_then_warm(self, work_dir):
        runner = _small_suite(work_dir)
        cold = runner.run()
        assert cold.total == 4 and cold.executed == 4 and cold.skipped == 0
        assert not cold.failures
        store_bytes = (work_dir / "results.jsonl").read_bytes()
        assert len(store_bytes.splitlines()) == 4

        warm = _small_suite(work_dir).run()
        assert warm.executed == 0 and warm.skipped == 4
        assert warm.warm
        assert (work_dir / "results.jsonl").read_bytes() == store_bytes
        assert [r["scenario"] for r in warm.records] == [r["scenario"] for r in cold.records]

    def test_resume_after_kill_executes_only_missing(self, work_dir):
        _small_suite(work_dir).run()
        store_path = work_dir / "results.jsonl"
        lines = store_path.read_text().splitlines()
        # simulate a kill mid-append: two cells lost, the last one torn mid-write
        store_path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed = _small_suite(work_dir).run()
        assert resumed.executed == 2 and resumed.skipped == 2
        assert len(SuiteStore(store_path).load()) == 4

    def test_two_cold_runs_are_identical_modulo_timing(self, tmp_path):
        a = _small_suite(tmp_path / "a").run()
        b = _small_suite(tmp_path / "b").run()
        assert [strip_timing(r) for r in a.records] == [strip_timing(r) for r in b.records]
        for record in a.records:
            assert "duration" in record and "finished_at" in record

    def test_chatvis_settings_change_invalidates_only_chatvis_cells(self, work_dir):
        scenarios = generate_scenarios(limit=2)
        common = dict(
            methods=("ChatVis", "gpt-4"),
            working_dir=work_dir / "work",
            store=work_dir / "results.jsonl",
        )
        first = SuiteRunner(scenarios, max_iterations=5, **common).run()
        assert first.executed == 4
        # a different correction budget must not reuse the old ChatVis records
        rerun = SuiteRunner(scenarios, max_iterations=2, **common).run()
        assert rerun.executed == 2
        assert rerun.skipped == 2  # the unassisted gpt-4 cells are untouched

    def test_resolution_override_changes_cell_keys(self, work_dir):
        _small_suite(work_dir, n=2).run()
        rescaled = _small_suite(work_dir, n=2, resolution=(96, 72)).run()
        assert rescaled.executed == 2  # different keys: nothing reused
        assert all(r["resolution"] == [96, 72] for r in rescaled.records)

    def test_storeless_runner_always_executes(self, work_dir):
        runner = SuiteRunner(
            generate_scenarios(limit=2), methods=("gpt-4",), working_dir=work_dir
        )
        first = runner.run()
        assert first.executed == 2 and first.store_path is None
        assert runner.run().executed == 2

    def test_records_stream_to_the_store_as_cells_complete(self, work_dir, monkeypatch):
        """An abort mid-suite keeps every already-finished cell (per-cell durability)."""
        from repro.scenarios import suite as suite_module

        real_cell = suite_module.run_suite_cell
        calls = {"n": 0}

        def flaky_cell(scenario, method, cell_dir, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt  # the user hits Ctrl-C on the third cell
            return real_cell(scenario, method, cell_dir, **kwargs)

        monkeypatch.setattr(suite_module, "run_suite_cell", flaky_cell)
        runner = _small_suite(work_dir)
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        # the two cells that finished before the interrupt are on disk
        assert len(SuiteStore(work_dir / "results.jsonl").load()) == 2

        monkeypatch.setattr(suite_module, "run_suite_cell", real_cell)
        resumed = _small_suite(work_dir).run()
        assert resumed.executed == 2 and resumed.skipped == 2

    def test_infrastructure_failures_are_reported_not_stored(self, work_dir, monkeypatch):
        from repro.scenarios import suite as suite_module

        real_cell = suite_module.run_suite_cell

        def broken_cell(scenario, method, cell_dir, **kwargs):
            if scenario.name.endswith("v0p3-polite"):
                raise RuntimeError("disk full")
            return real_cell(scenario, method, cell_dir, **kwargs)

        monkeypatch.setattr(suite_module, "run_suite_cell", broken_cell)
        summary = _small_suite(work_dir).run()
        assert len(summary.failures) == 1
        assert "disk full" in summary.failures[0][1]
        assert not summary.warm  # a failing run is never reported as warm
        # failed cells are not persisted, so the next run retries exactly them
        monkeypatch.setattr(suite_module, "run_suite_cell", real_cell)
        retried = _small_suite(work_dir).run()
        assert retried.executed == 1 and not retried.failures

    def test_process_executor_matches_serial(self, tmp_path):
        scenarios = generate_scenarios(limit=3)
        serial = SuiteRunner(
            scenarios, methods=("gpt-4",), working_dir=tmp_path / "s", store=tmp_path / "s.jsonl"
        ).run()
        process = SuiteRunner(
            scenarios,
            methods=("gpt-4",),
            working_dir=tmp_path / "p",
            store=tmp_path / "p.jsonl",
            executor="process",
            max_workers=2,
            cache_dir=tmp_path / "cache",
        ).run()
        assert not process.failures
        assert [strip_timing(r) for r in process.records] == [
            strip_timing(r) for r in serial.records
        ]

    def test_chatvis_method_records_iterations(self, work_dir):
        runner = SuiteRunner(
            generate_scenarios(spec="delaunay-phrasings", limit=1),
            methods=("ChatVis", "codegemma"),
            working_dir=work_dir / "work",
            store=work_dir / "results.jsonl",
        )
        summary = runner.run()
        chatvis, weak = summary.records
        assert chatvis["method"] == "ChatVis"
        assert not chatvis["error"] and chatvis["screenshot"]
        assert chatvis["iterations"] >= 1
        assert weak["method"] == "codegemma"
        assert weak["error"] and not weak["screenshot"]


# --------------------------------------------------------------------------- #
# reporting
# --------------------------------------------------------------------------- #
class TestReport:
    def test_report_matrices_and_render(self, work_dir):
        runner = SuiteRunner(
            generate_scenarios(limit=3),
            methods=("gpt-4", "codegemma"),
            working_dir=work_dir / "work",
            store=work_dir / "results.jsonl",
        )
        summary = runner.run()
        report = build_report(summary.records)
        assert report.n_scenarios == 3 and report.n_cells == 6
        assert report.methods == ["gpt-4", "codegemma"]
        assert report.totals["gpt-4"].cells == 3

        markdown = report.to_markdown()
        assert "| method | contour | total |" in markdown
        assert "gpt-4" in markdown and "codegemma" in markdown

        json_path = report.write_json(work_dir / "report.json")
        payload = json.loads(json_path.read_text())
        assert payload["n_cells"] == 6
        assert payload["matrix"]["gpt-4"]["contour"]["cells"] == 3

        from_store = load_report(work_dir / "results.jsonl")
        assert from_store.n_cells == 6

    def test_failing_cells_listed(self):
        records = [
            {"method": "m", "family": "contour", "scenario": "s1", "error": False, "screenshot": True},
            {"method": "m", "family": "contour", "scenario": "s2", "error": True,
             "screenshot": False, "error_type": "AttributeError", "phrasing": "paper"},
        ]
        report = build_report(records)
        assert len(report.failing_cells) == 1
        assert "AttributeError" in report.to_markdown()
