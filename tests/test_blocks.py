"""Tests for block-decomposed, out-of-core execution (repro.engine.blocks).

The parity tests distinguish two strengths deliberately:

* **byte-exact** — threshold merges rebuild the parent's cell enumeration,
  so blocked and whole outputs share a content fingerprint;
* **geometric** — contour/slice/clip merge by point-coincidence weld, which
  can tessellate (and collapse degenerate slivers at) block seams
  differently, so parity is a symmetric point-set distance far below the
  lattice spacing.

The process-executor tests rely on everything in this module being
importable by name (multiprocessing spawn re-imports the test module in the
workers); keep helper functions at module level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import clip_dataset, contour, slice_dataset, threshold
from repro.datamodel import CellType, ImageData, PolyData, UnstructuredGrid
from repro.engine.blocks import (
    BlocksConfig,
    blocked_execution,
    maybe_run_blocked,
    partition_dataset,
    partition_image_data,
    partition_unstructured,
    run_blocked,
    stats_snapshot,
)
from repro.verify.comparators import point_sets_close


@pytest.fixture(autouse=True)
def _fresh_shared_cache():
    """Block results ride the process-global shared cache; isolate each test."""
    from repro.engine.cache import shared_cache

    shared_cache().clear()
    yield
    shared_cache().clear()


def _wave_image(dims=(7, 6, 8)):
    img = ImageData(dims, origin=(-0.4, 0.2, 1.5), spacing=(0.35, 0.5, 0.25))
    pts = img.get_points()
    values = (
        np.sin(1.3 * pts[:, 0]) * np.cos(0.9 * pts[:, 1]) + 0.4 * np.sin(1.7 * pts[:, 2])
    )
    img.add_point_array("field", values)
    img.add_point_array("aux", pts[:, 2] * 0.5)
    return img


def _wave_grid():
    """A tetrahedral grid with the wave field (derived via a wide threshold)."""
    img = _wave_image((6, 5, 6))
    return threshold(img, array_name="field", lower=-10.0, upper=10.0)


def _config(**overrides):
    defaults = dict(n_blocks=3, ghost=1, executor="thread", max_workers=2)
    defaults.update(overrides)
    return BlocksConfig(**defaults)


CONTOUR_PARAMS = {"isovalues": [0.15], "array_name": "field", "compute_normals": True}
SLICE_PARAMS = {"origin": [0.3, 1.2, 2.2], "normal": [0.3, 0.1, 1.0]}
THRESHOLD_PARAMS = {"array_name": "field", "lower": -0.2, "upper": 0.6, "all_points": True}
CLIP_PARAMS = {"origin": [0.3, 1.2, 2.2], "normal": [0.3, 0.1, 1.0], "keep_negative": False}


def _whole(op, dataset):
    if op == "contour":
        return contour(
            dataset,
            CONTOUR_PARAMS["isovalues"],
            array_name=CONTOUR_PARAMS["array_name"],
            compute_normals=CONTOUR_PARAMS["compute_normals"],
        )
    if op == "slice":
        return slice_dataset(dataset, origin=SLICE_PARAMS["origin"], normal=SLICE_PARAMS["normal"])
    if op == "threshold":
        return threshold(
            dataset,
            array_name=THRESHOLD_PARAMS["array_name"],
            lower=THRESHOLD_PARAMS["lower"],
            upper=THRESHOLD_PARAMS["upper"],
            all_points=THRESHOLD_PARAMS["all_points"],
        )
    if op == "clip":
        return clip_dataset(
            dataset,
            origin=CLIP_PARAMS["origin"],
            normal=CLIP_PARAMS["normal"],
            keep_negative=CLIP_PARAMS["keep_negative"],
        )
    raise AssertionError(op)


PARAMS_OF = {
    "contour": CONTOUR_PARAMS,
    "slice": SLICE_PARAMS,
    "threshold": THRESHOLD_PARAMS,
    "clip": CLIP_PARAMS,
}


def _geometric_close(a, b, spacing_floor):
    if a.n_points == 0 and b.n_points == 0:
        return True
    result = point_sets_close(a, b, max_distance=0.5 * spacing_floor)
    assert result.ok, result.details
    return True


# --------------------------------------------------------------------------- #
# partitioning invariants
# --------------------------------------------------------------------------- #
class TestPartitioning:
    def test_image_owned_ranges_tile_the_cell_axis(self):
        img = _wave_image()
        bs = partition_image_data(img, 3, ghost=1)
        axis = bs.axis
        cells = img.cell_dimensions[axis]
        cursor = 0
        for block in bs.blocks:
            assert block.owned[0] == cursor
            assert block.owned[1] > block.owned[0]
            assert block.ghosted[0] <= block.owned[0]
            assert block.ghosted[1] >= block.owned[1]
            cursor = block.owned[1]
        assert cursor == cells

    def test_image_partitions_along_slowest_axis_with_cells(self):
        bs = partition_image_data(_wave_image((7, 6, 8)), 3)
        assert bs.axis == 2
        # a flat (degenerate z) image still partitions, along y
        flat = partition_image_data(_wave_image((5, 6, 1)), 3)
        assert flat is not None and flat.axis == 1

    @pytest.mark.parametrize("ghost", [0, 1, 2])
    def test_image_ghost_width_respected(self, ghost):
        img = _wave_image()
        bs = partition_image_data(img, 4, ghost=ghost)
        cells = img.cell_dimensions[bs.axis]
        for block in bs.blocks:
            assert block.ghosted[0] == max(block.owned[0] - ghost, 0)
            assert block.ghosted[1] == min(block.owned[1] + ghost, cells)

    def test_degenerate_partitions_return_none(self):
        # a single cell cannot split into two blocks
        assert partition_image_data(ImageData((2, 2, 2)), 4) is None
        # (2, 2, 1) has exactly one cell along its only cell-bearing axis
        assert partition_image_data(ImageData((2, 2, 1)), 4) is None
        # n_blocks < 2 means "don't decompose"
        assert partition_image_data(_wave_image(), 1) is None
        grid = _wave_grid()
        assert partition_unstructured(grid, 1) is None
        single = UnstructuredGrid(np.zeros((4, 3)))
        single.add_cell(CellType.TETRA, (0, 1, 2, 3))
        assert partition_unstructured(single, 8) is None

    def test_unsupported_dataset_type_returns_none(self):
        poly = PolyData(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        assert partition_dataset(poly, 4) is None

    def test_grid_shards_own_every_cell_exactly_once(self):
        grid = _wave_grid()
        bs = partition_unstructured(grid, 4, ghost=1)
        owned = np.concatenate([b.cell_ids[b.owned_mask] for b in bs.blocks])
        assert sorted(owned.tolist()) == list(range(grid.n_cells))

    def test_grid_ghosts_share_points_with_owned_cells(self):
        grid = _wave_grid()
        bs = partition_unstructured(grid, 3, ghost=1)
        cell_list = list(grid.cells())
        for block in bs.blocks:
            owned_pts = {
                int(p)
                for cid in block.cell_ids[block.owned_mask]
                for p in cell_list[int(cid)][1]
            }
            for cid in block.cell_ids[~block.owned_mask]:
                ghost_pts = {int(p) for p in cell_list[int(cid)][1]}
                assert ghost_pts & owned_pts


# --------------------------------------------------------------------------- #
# blocked == whole parity
# --------------------------------------------------------------------------- #
class TestParity:
    def test_image_threshold_is_byte_exact(self):
        img = _wave_image()
        whole = _whole("threshold", img)
        blocked = run_blocked("threshold", img, THRESHOLD_PARAMS, _config())
        assert blocked.content_fingerprint() == whole.content_fingerprint()

    def test_grid_threshold_is_byte_exact(self):
        grid = _wave_grid()
        whole = _whole("threshold", grid)
        blocked = run_blocked("threshold", grid, THRESHOLD_PARAMS, _config())
        assert blocked.content_fingerprint() == whole.content_fingerprint()

    @pytest.mark.parametrize("op", ["contour", "slice", "clip"])
    def test_image_geometric_ops_match_whole(self, op):
        img = _wave_image()
        whole = _whole(op, img)
        blocked = run_blocked(op, img, PARAMS_OF[op], _config())
        assert _geometric_close(whole, blocked, min(img.spacing))

    @pytest.mark.parametrize("op", ["contour", "slice", "clip"])
    def test_grid_geometric_ops_match_whole(self, op):
        grid = _wave_grid()
        whole = _whole(op, grid)
        blocked = run_blocked(op, grid, PARAMS_OF[op], _config())
        assert _geometric_close(whole, blocked, 0.25)

    def test_contour_blocked_carries_normals(self):
        img = _wave_image()
        blocked = run_blocked("contour", img, CONTOUR_PARAMS, _config())
        assert blocked.n_triangles > 0
        assert "Normals" in blocked.point_data.names()

    @pytest.mark.parametrize("ghost", [0, 1, 2])
    def test_ghost_width_never_changes_threshold_bytes(self, ghost):
        img = _wave_image()
        whole = _whole("threshold", img)
        blocked = run_blocked("threshold", img, THRESHOLD_PARAMS, _config(ghost=ghost))
        assert blocked.content_fingerprint() == whole.content_fingerprint()

    @pytest.mark.parametrize("ghost", [0, 1, 2])
    def test_ghost_width_keeps_slice_geometry(self, ghost):
        img = _wave_image()
        whole = _whole("slice", img)
        blocked = run_blocked("slice", img, SLICE_PARAMS, _config(ghost=ghost))
        assert _geometric_close(whole, blocked, min(img.spacing))

    def test_single_cell_wide_blocks(self):
        # as many blocks as cells along the axis: every owned range is one cell
        img = _wave_image()
        cells = img.cell_dimensions[2]
        bs = partition_image_data(img, cells, ghost=1)
        assert len(bs) == cells
        assert all(b.owned[1] - b.owned[0] == 1 for b in bs.blocks)
        whole = _whole("threshold", img)
        blocked = run_blocked("threshold", img, THRESHOLD_PARAMS, _config(n_blocks=cells))
        assert blocked.content_fingerprint() == whole.content_fingerprint()

    def test_nan_scalars_crossing_block_boundaries(self):
        img = _wave_image()
        values = img.point_data["field"].values.copy()
        nz, ny, nx = img.dimensions[2], img.dimensions[1], img.dimensions[0]
        grid = values.reshape(nz, ny, nx, 1)
        # a NaN band straddling the first block seam of a 3-way split
        grid[2:4, 1:4, 2:5, :] = np.nan
        img.point_data.add_array("field", grid.reshape(-1, 1))
        whole = _whole("threshold", img)
        blocked = run_blocked("threshold", img, THRESHOLD_PARAMS, _config())
        assert blocked.content_fingerprint() == whole.content_fingerprint()
        # the geometric ops must carry NaN geometry through without crashing
        whole_slice = _whole("slice", img)
        blocked_slice = run_blocked("slice", img, SLICE_PARAMS, _config())
        assert blocked_slice.n_points >= 0
        assert whole_slice.n_points >= 0


# --------------------------------------------------------------------------- #
# executors and caching
# --------------------------------------------------------------------------- #
class TestExecutionSubstrate:
    def test_thread_and_process_executors_agree_byte_for_byte(self):
        img = _wave_image()
        by_executor = {}
        for executor in ("thread", "process"):
            from repro.engine.cache import shared_cache

            shared_cache().clear()
            out = run_blocked(
                "slice", img, SLICE_PARAMS, _config(executor=executor, max_workers=2)
            )
            by_executor[executor] = out.content_fingerprint()
        assert by_executor["thread"] == by_executor["process"]

    def test_worker_counts_agree_byte_for_byte(self):
        img = _wave_image()
        prints = set()
        for workers in (1, 2, 4):
            from repro.engine.cache import shared_cache

            shared_cache().clear()
            out = run_blocked("contour", img, CONTOUR_PARAMS, _config(max_workers=workers))
            prints.add(out.content_fingerprint())
        assert len(prints) == 1

    def test_second_run_is_served_from_the_block_cache(self):
        img = _wave_image()
        config = _config()
        with blocked_execution(config) as stats:
            first = maybe_run_blocked("contour", img, CONTOUR_PARAMS)
            assert stats.blocks_executed == stats.blocks_total > 0
            assert stats.blocks_cached == 0
            second = maybe_run_blocked("contour", img, CONTOUR_PARAMS)
        assert stats.runs == 2
        assert stats.blocks_cached == stats.blocks_total // 2
        assert second.content_fingerprint() == first.content_fingerprint()

    def test_cache_key_distinguishes_ghost_and_params(self):
        img = _wave_image()
        with blocked_execution(_config(ghost=1)) as stats:
            maybe_run_blocked("slice", img, SLICE_PARAMS)
            executed_first = stats.blocks_executed
            # different ghost width -> different extents -> fresh executions
            with blocked_execution(_config(ghost=2)) as inner:
                maybe_run_blocked("slice", img, SLICE_PARAMS)
                assert inner.blocks_executed > 0
                assert inner.blocks_cached == 0
        assert executed_first > 0

    def test_scope_is_required_and_restored(self):
        img = _wave_image()
        assert maybe_run_blocked("slice", img, SLICE_PARAMS) is None
        with blocked_execution(_config()):
            assert maybe_run_blocked("slice", img, SLICE_PARAMS) is not None
        assert maybe_run_blocked("slice", img, SLICE_PARAMS) is None
        assert stats_snapshot().runs == 0

    def test_unsupported_op_and_type_fall_through(self):
        img = _wave_image()
        poly = PolyData(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        with blocked_execution(_config()):
            assert maybe_run_blocked("streamlines", img, {}) is None
            assert maybe_run_blocked("slice", poly, SLICE_PARAMS) is None

    def test_degenerate_dataset_falls_back_to_whole(self):
        tiny = ImageData((2, 2, 2))
        tiny.add_point_array("field", np.linspace(0.0, 1.0, 8))
        with blocked_execution(_config(n_blocks=4)) as stats:
            assert maybe_run_blocked("threshold", tiny, THRESHOLD_PARAMS) is None
        assert stats.runs == 0


# --------------------------------------------------------------------------- #
# suite / executor integration surface
# --------------------------------------------------------------------------- #
class TestIntegrationSurface:
    def test_suite_runner_threads_block_options_through(self, tmp_path):
        from repro.scenarios import SuiteRunner

        runner = SuiteRunner([], working_dir=tmp_path, blocks=4, ghost=2)
        assert runner.blocks == 4 and runner.ghost == 2
        plain = SuiteRunner([], working_dir=tmp_path)
        assert plain.blocks is None and plain.ghost == 1

    def test_block_options_stay_out_of_cell_keys(self, tmp_path):
        """Blocking is an execution strategy: whole and blocked runs must
        resume (and byte-compare) against the same stored records."""
        from repro.scenarios import SuiteRunner

        blocked = SuiteRunner([], working_dir=tmp_path, blocks=4, ghost=2)
        plain = SuiteRunner([], working_dir=tmp_path)
        assert blocked._cell_settings("gpt-4") == plain._cell_settings("gpt-4")

    def test_execution_result_reports_block_counters(self):
        from repro.pvsim.executor import ExecutionResult

        result = ExecutionResult(success=True)
        assert result.blocks_executed == 0
        assert result.blocks_cached == 0

    def test_cli_suite_run_accepts_block_flags(self):
        from repro.cli import build_parser

        ns = build_parser().parse_args(
            ["suite", "run", ".", "--blocks", "4", "--ghost", "2"]
        )
        assert ns.blocks == 4 and ns.ghost == 2

    def test_blocked_run_emits_trace_spans(self):
        from repro.obs.trace import Tracer, disable_tracing, enable_tracing

        img = _wave_image()
        tracer = enable_tracing(Tracer())
        try:
            run_blocked("slice", img, SLICE_PARAMS, _config())
        finally:
            disable_tracing()
        categories = [s.category for s in tracer.spans()]
        assert "blocks.run" in categories
        # one zero-length marker span per block, cached or not
        assert categories.count("blocks.block") == 3
