"""Tests for the evaluation package (metrics, ground truth, harness)."""

import numpy as np
import pytest

from repro.core.tasks import CANONICAL_TASKS, prepare_task_data
from repro.eval import (
    analyze_script,
    compare_scripts,
    ground_truth_script,
    histogram_similarity,
    image_coverage,
    mean_squared_error,
    peak_signal_to_noise_ratio,
    run_figure_comparison,
    run_ground_truth,
    run_table_one,
    run_table_two,
    structural_similarity,
)
from repro.eval.harness import run_unassisted
from repro.io import write_png


class TestImageMetrics:
    def _image(self, value, shape=(20, 30, 3)):
        return np.full(shape, value, dtype=float)

    def test_identical_images(self):
        image = np.random.default_rng(0).random((16, 16, 3))
        assert mean_squared_error(image, image) == 0.0
        assert peak_signal_to_noise_ratio(image, image) == float("inf")
        assert structural_similarity(image, image) == pytest.approx(1.0, abs=1e-6)
        assert histogram_similarity(image, image) == pytest.approx(1.0)

    def test_different_images(self):
        a = self._image(0.0)
        b = self._image(1.0)
        assert mean_squared_error(a, b) == pytest.approx(1.0)
        assert histogram_similarity(a, b) == pytest.approx(0.0)

    def test_structural_similarity_orders_candidates(self):
        rng = np.random.default_rng(0)
        truth = rng.random((32, 32, 3))
        near = np.clip(truth + 0.02 * rng.standard_normal(truth.shape), 0, 1)
        far = rng.random((32, 32, 3))
        assert structural_similarity(truth, near) > structural_similarity(truth, far)

    def test_image_coverage(self):
        image = np.ones((10, 10, 3))
        image[:5] = 0.2
        assert image_coverage(image) == pytest.approx(0.5)

    def test_loads_png_files(self, work_dir):
        image = (np.random.default_rng(1).random((8, 8, 3)) * 255).astype(np.uint8)
        path = work_dir / "img.png"
        write_png(path, image)
        assert mean_squared_error(path, image) == pytest.approx(0.0, abs=1e-4)

    def test_shape_mismatch_resampled(self):
        a = np.zeros((10, 10, 3))
        b = np.zeros((20, 20, 3))
        assert mean_squared_error(a, b) == 0.0


class TestScriptMetrics:
    GOOD = (
        "from paraview.simple import *\n"
        "reader = LegacyVTKReader(FileNames=['ml.vtk'])\n"
        "contour = Contour(Input=reader)\n"
        "contour.Isosurfaces = [0.5]\n"
        "view = GetActiveViewOrCreate('RenderView')\n"
        "Show(contour, view)\n"
        "SaveScreenshot('x.png', view)\n"
    )
    BAD = (
        "from paraview.simple import *\n"
        "reader = LegacyVTKReader(FileNames=['ml.vtk'])\n"
        "contour = Contour(Input=reader)\n"
        "contour.ContourValues = [0.5]\n"
        "lut = GetLookupTableForArray('var0', 1)\n"
    )

    def test_analyze_good_script(self):
        analysis = analyze_script(self.GOOD)
        assert analysis.parse_ok
        assert not analysis.has_hallucinations
        assert "Contour" in analysis.constructors
        assert "SaveScreenshot" in analysis.calls

    def test_analyze_detects_hallucinations(self):
        analysis = analyze_script(self.BAD)
        assert ("Contour", "ContourValues") in analysis.hallucinated_properties
        assert "GetLookupTableForArray" in analysis.unknown_functions

    def test_analyze_syntax_error(self):
        analysis = analyze_script("x = (1\n")
        assert not analysis.parse_ok
        assert analysis.syntax_error

    def test_compare_scripts_coverage(self):
        comparison = compare_scripts(self.BAD, self.GOOD)
        assert 0.0 <= comparison.operation_coverage <= 1.0
        assert "SaveScreenshot" in comparison.missing_calls
        identical = compare_scripts(self.GOOD, self.GOOD)
        assert identical.operation_coverage == 1.0
        assert not identical.missing_calls


class TestGroundTruth:
    @pytest.mark.parametrize("task_name", list(CANONICAL_TASKS))
    def test_scripts_exist_and_format(self, task_name):
        script = ground_truth_script(task_name, resolution=(200, 150))
        assert "SaveScreenshot" in script
        assert "[200, 150]" in script

    def test_ground_truth_runs_isosurface(self, work_dir):
        prepare_task_data("isosurface", work_dir, small=True)
        result = run_ground_truth("isosurface", work_dir, resolution=(120, 90))
        assert result.success
        assert result.produced_screenshot

    def test_ground_truth_runs_slice_contour(self, work_dir):
        prepare_task_data("slice_contour", work_dir, small=True)
        result = run_ground_truth("slice_contour", work_dir, resolution=(120, 90))
        assert result.success and result.produced_screenshot

    def test_ground_truth_runs_delaunay(self, work_dir):
        prepare_task_data("delaunay", work_dir, small=True)
        result = run_ground_truth("delaunay", work_dir, resolution=(120, 90))
        assert result.success and result.produced_screenshot


class TestScaledPrompt:
    def _task(self, prompt):
        from repro.core.tasks import VisualizationTask

        return VisualizationTask(
            name="t", title="t", user_prompt=prompt, data_files=(), screenshot="t.png"
        )

    def test_paper_phrasing_rescales(self):
        from repro.eval.harness import scaled_prompt

        task = self._task("The view should be 1920 x 1080 pixels.")
        assert "96 x 72 pixels" in scaled_prompt(task, (96, 72))

    @pytest.mark.parametrize(
        "phrase",
        [
            "320x240 px",  # no spaces, px
            "320 x 240 PX",  # case-insensitive unit
            "320 X 240 Pixels",  # capital separator and unit
            "320x240 pixel",  # singular
        ],
    )
    def test_template_variants_rescale(self, phrase):
        from repro.eval.harness import scaled_prompt

        task = self._task(f"Screenshot size: {phrase}.")
        scaled = scaled_prompt(task, (96, 72))
        assert "96 x 72 pixels" in scaled
        assert "320" not in scaled

    def test_pixelated_prose_untouched(self):
        from repro.eval.harness import scaled_prompt

        task = self._task("Use 4 x 4 supersampling, output 640 x 480 pixels.")
        scaled = scaled_prompt(task, (96, 72))
        assert "4 x 4 supersampling" in scaled
        assert "96 x 72 pixels" in scaled


class TestHarness:
    def test_unassisted_gpt4_isosurface(self, work_dir):
        prepare_task_data("isosurface", work_dir, small=True)
        script, result = run_unassisted("gpt-4", "isosurface", work_dir, resolution=(120, 90))
        assert "Contour" in script
        assert result.produced_screenshot  # the one task GPT-4 gets right

    def test_unassisted_weak_model_fails(self, work_dir):
        prepare_task_data("isosurface", work_dir, small=True)
        _script, result = run_unassisted("codegemma", "isosurface", work_dir, resolution=(120, 90))
        assert not result.success

    def test_figure_comparison_isosurface(self, work_dir):
        comparison = run_figure_comparison("isosurface", work_dir, resolution=(120, 90))
        chatvis = comparison.method("ChatVis")
        assert chatvis.produced
        assert chatvis.mse == pytest.approx(0.0, abs=1e-9)
        gpt4 = comparison.method("GPT-4")
        assert gpt4.produced
        assert gpt4.mse > chatvis.mse

    def test_table_two_single_task_pattern(self, work_dir):
        result = run_table_two(
            work_dir,
            models=("gpt-4", "codegemma"),
            tasks=["delaunay"],
            resolution=(120, 90),
        )
        chatvis_cell = result.cell("ChatVis", "delaunay")
        gpt4_cell = result.cell("gpt-4", "delaunay")
        weak_cell = result.cell("codegemma", "delaunay")
        assert chatvis_cell.screenshot and not chatvis_cell.error
        assert gpt4_cell.error and not gpt4_cell.screenshot
        assert weak_cell.error and not weak_cell.screenshot
        table_text = result.format_table()
        assert "Delaunay triangulation" in table_text

    def test_table_one_summary(self, work_dir):
        result = run_table_one(work_dir, resolution=(120, 90))
        assert result.chatvis_execution_success
        assert not result.gpt4_execution_success
        assert result.gpt4_comparison.candidate.has_hallucinations
        assert not result.chatvis_comparison.candidate.has_hallucinations
        assert "StreamTracer" in result.chatvis_script
