"""Tests for the paraview.simple-compatible layer and the PvPython executor."""

import numpy as np
import pytest

from repro.data import write_disk_flow, write_marschner_lobb
from repro.pvsim import run_script, simple
from repro.pvsim.errors import PipelineError
from repro.pvsim.executor import PvPythonExecutor
from repro.pvsim import state


@pytest.fixture(autouse=True)
def _fresh_session():
    """Every test starts from a clean pvsim session."""
    state.reset_session()
    yield
    state.reset_session()


@pytest.fixture()
def ml_file(work_dir):
    return write_marschner_lobb(work_dir / "ml-100.vtk", resolution=16)


@pytest.fixture()
def disk_file(work_dir):
    return write_disk_flow(work_dir / "disk.ex2", 5, 12, 5)


class TestProxies:
    def test_unknown_property_raises_attribute_error(self):
        contour = simple.Contour()
        with pytest.raises(AttributeError):
            contour.ContourValues = [0.5]
        with pytest.raises(AttributeError):
            _ = contour.NotAProperty

    def test_known_property_roundtrip(self):
        contour = simple.Contour()
        contour.Isosurfaces = [0.25]
        assert contour.Isosurfaces == [0.25]

    def test_constructor_kwargs_validated(self):
        with pytest.raises(AttributeError):
            simple.Contour(BogusProperty=1)

    def test_property_group_access(self):
        slice_proxy = simple.Slice()
        slice_proxy.SliceType.Origin = [1.0, 2.0, 3.0]
        assert slice_proxy.SliceType.Origin == [1.0, 2.0, 3.0]
        with pytest.raises(AttributeError):
            slice_proxy.SliceType.Centre = [0, 0, 0]

    def test_group_string_selection(self):
        tracer = simple.StreamTracer(SeedType="Point Cloud")
        tracer.SeedType.NumberOfPoints = 25
        assert tracer.SeedType.NumberOfPoints == 25

    def test_registration_names_unique(self):
        a = simple.Contour()
        b = simple.Contour()
        assert a.registration_name != b.registration_name

    def test_error_message_mentions_proxy_label(self):
        glyph = simple.Glyph()
        with pytest.raises(AttributeError, match="Glyph"):
            glyph.Scalars = ["POINTS", "Temp"]


class TestReadersAndFilters:
    def test_legacy_reader(self, ml_file, work_dir):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        output = reader.get_output()
        assert output.n_points == 16 ** 3
        assert reader.GetDataInformation().GetNumberOfPoints() == 16 ** 3

    def test_missing_file_errors(self, work_dir):
        reader = simple.LegacyVTKReader(FileNames=[str(work_dir / "nope.vtk")])
        with pytest.raises(PipelineError):
            reader.get_output()

    def test_exodus_reader_point_variables_check(self, disk_file):
        reader = simple.ExodusIIReader(FileName=str(disk_file))
        reader.PointVariables = ["V", "Temp"]
        assert "V" in reader.get_output().point_data
        reader2 = simple.ExodusIIReader(FileName=str(disk_file), PointVariables=["NotThere"])
        with pytest.raises(PipelineError):
            reader2.get_output()

    def test_open_data_file_dispatch(self, ml_file, disk_file):
        assert simple.OpenDataFile(str(ml_file)).get_output().n_points > 0
        assert simple.OpenDataFile(str(disk_file)).get_output().n_points > 0
        with pytest.raises(PipelineError):
            simple.OpenDataFile("something.xyz")

    def test_contour_filter(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        contour = simple.Contour(Input=reader)
        contour.ContourBy = ["POINTS", "var0"]
        contour.Isosurfaces = [0.5]
        output = contour.get_output()
        assert output.n_triangles > 0

    def test_filter_uses_active_source_when_input_omitted(self, ml_file):
        simple.LegacyVTKReader(FileNames=[str(ml_file)])
        contour = simple.Contour()
        contour.Isosurfaces = [0.5]
        assert contour.get_output().n_triangles > 0

    def test_slice_and_clip(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        cut = simple.Slice(Input=reader)
        cut.SliceType.Origin = [0, 0, 0]
        cut.SliceType.Normal = [1, 0, 0]
        assert cut.get_output().n_triangles > 0
        clip = simple.Clip(Input=cut)
        clip.ClipType.Normal = [0, 1, 0]
        clip.Invert = 1
        clipped = clip.get_output()
        assert clipped.get_points()[:, 1].max() <= 1e-6

    def test_stream_tube_glyph_chain(self, disk_file):
        reader = simple.ExodusIIReader(FileName=str(disk_file))
        tracer = simple.StreamTracer(Input=reader, SeedType="Point Cloud")
        tracer.Vectors = ["POINTS", "V"]
        tracer.SeedType.NumberOfPoints = 10
        lines = tracer.get_output()
        assert lines.n_lines > 0
        tube = simple.Tube(Input=tracer)
        tube.Radius = 0.05
        assert tube.get_output().n_triangles > 0
        glyph = simple.Glyph(Input=tracer, GlyphType="Cone")
        glyph.OrientationArray = ["POINTS", "V"]
        assert glyph.get_output().n_triangles > 0

    def test_glyph_rejects_unknown_type(self, disk_file):
        reader = simple.ExodusIIReader(FileName=str(disk_file))
        glyph = simple.Glyph(Input=reader, GlyphType="Banana")
        with pytest.raises(PipelineError):
            glyph.get_output()

    def test_stream_tracer_missing_vector(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        tracer = simple.StreamTracer(Input=reader)
        tracer.Vectors = ["POINTS", "var0"]  # scalar, not a vector
        with pytest.raises((PipelineError, ValueError)):
            tracer.get_output()

    def test_threshold_and_extract_surface(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        thresh = simple.Threshold(Input=reader)
        thresh.Scalars = ["POINTS", "var0"]
        thresh.LowerThreshold = 0.5
        thresh.UpperThreshold = 1.0
        assert thresh.get_output().n_cells > 0
        surface = simple.ExtractSurface(Input=thresh)
        assert surface.get_output().n_triangles > 0

    def test_calculator(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        calc = simple.Calculator(Input=reader)
        calc.Function = "var0 * 2"
        calc.ResultArrayName = "doubled"
        output = calc.get_output()
        assert np.allclose(
            output.point_data["doubled"].as_scalar(),
            2 * output.point_data["var0"].as_scalar(),
        )

    def test_delaunay_filter(self, work_dir):
        from repro.data import write_can_points

        path = write_can_points(work_dir / "can_points.ex2", n_points=80)
        reader = simple.ExodusIIReader(FileName=str(path))
        delaunay = simple.Delaunay3D(Input=reader)
        assert delaunay.get_output().n_cells > 0

    def test_output_caching_and_invalidation(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        contour = simple.Contour(Input=reader, Isosurfaces=[0.5], ContourBy=["POINTS", "var0"])
        first = contour.get_output()
        assert contour.get_output() is first  # cached
        contour.Isosurfaces = [0.7]
        assert contour.get_output() is not first

    def test_wavelet_and_sphere_sources(self):
        wavelet = simple.Wavelet(WholeExtent=[-3, 3, -3, 3, -3, 3])
        assert "RTData" in wavelet.get_output().point_data
        sphere = simple.Sphere(Radius=2.0)
        out = sphere.get_output()
        assert out.bounds().diagonal == pytest.approx(2 * 2 * 2.0, rel=0.2)


class TestViewsAndDisplays:
    def test_show_and_colorby(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        contour = simple.Contour(Input=reader, Isosurfaces=[0.5], ContourBy=["POINTS", "var0"])
        view = simple.GetActiveViewOrCreate("RenderView")
        display = simple.Show(contour, view)
        simple.ColorBy(display, ("POINTS", "var0"))
        assert display.ColorArrayName[1] == "var0"
        simple.ColorBy(display, None)
        assert display.ColorArrayName[1] == ""

    def test_colorby_unknown_array(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        view = simple.GetActiveViewOrCreate("RenderView")
        display = simple.Show(reader, view)
        with pytest.raises(PipelineError):
            simple.ColorBy(display, ("POINTS", "nope"))

    def test_show_with_string_view_fails(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        with pytest.raises(PipelineError, match="RenderView"):
            simple.Show(reader, "RenderView1")

    def test_camera_reset_and_axis_views(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        view = simple.CreateView("RenderView")
        simple.Show(reader, view)
        view.ResetCamera()
        # the .vtk writer rounds the spacing, so the center is only approximate
        assert np.allclose(view.CameraFocalPoint, [0, 0, 0], atol=1e-3)
        view.ResetActiveCameraToPositiveX()
        assert view.CameraPosition[0] > 0
        view.ApplyIsometricView()
        assert view.CameraPosition[0] > 0 and view.CameraPosition[2] > 0

    def test_camera_proxy_operations(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        view = simple.GetActiveViewOrCreate("RenderView")
        simple.Show(reader, view)
        camera = simple.GetActiveCamera()
        camera.SetPosition(5, 0, 0)
        assert view.CameraPosition == [5.0, 0.0, 0.0]
        camera.Azimuth(30)
        camera.Elevation(10)
        camera.Zoom(1.5)

    def test_transfer_function_registry(self):
        ctf = simple.GetColorTransferFunction("Temp")
        assert simple.GetColorTransferFunction("Temp") is ctf
        ctf.ApplyPreset("Viridis", True)
        ctf.RescaleTransferFunction(300.0, 800.0)
        assert ctf.scalar_range() == (300.0, 800.0)
        otf = simple.GetOpacityTransferFunction("Temp")
        otf.RescaleTransferFunction(300.0, 800.0)

    def test_layout_assignment(self):
        view = simple.CreateView("RenderView")
        layout = simple.CreateLayout(name="Layout #1")
        layout.AssignView(0, view)
        assert layout.GetViewLocation(view) == 0
        assert layout.views() == [view]

    def test_hide(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        view = simple.GetActiveViewOrCreate("RenderView")
        display = simple.Show(reader, view)
        simple.Hide(reader, view)
        assert display.Visibility == 0

    def test_save_screenshot(self, ml_file, work_dir):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        contour = simple.Contour(Input=reader, Isosurfaces=[0.5], ContourBy=["POINTS", "var0"])
        view = simple.GetActiveViewOrCreate("RenderView")
        view.ViewSize = [120, 90]
        simple.Show(contour, view)
        view.ResetCamera()
        target = work_dir / "shot.png"
        assert simple.SaveScreenshot(str(target), view, ImageResolution=[120, 90])
        assert target.exists()

    def test_get_sources_and_active_source(self, ml_file):
        reader = simple.LegacyVTKReader(FileNames=[str(ml_file)])
        assert simple.GetActiveSource() is reader
        sources = simple.GetSources()
        assert reader in sources.values()


class TestExecutor:
    def test_successful_script(self, work_dir):
        write_marschner_lobb(work_dir / "ml-100.vtk", resolution=12)
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "contour = Contour(Input=reader, ContourBy=['POINTS', 'var0'], Isosurfaces=[0.5])\n"
            "view = GetActiveViewOrCreate('RenderView')\n"
            "view.ViewSize = [100, 80]\n"
            "Show(contour, view)\n"
            "ResetCamera(view)\n"
            "SaveScreenshot('out.png', view, ImageResolution=[100, 80])\n"
            "print('finished')\n"
        )
        result = run_script(script, working_dir=work_dir)
        assert result.success
        assert result.produced_screenshot
        assert "finished" in result.stdout
        assert (work_dir / "out.png").exists()

    def test_attribute_error_reported_like_paraview(self, work_dir):
        write_marschner_lobb(work_dir / "ml-100.vtk", resolution=8)
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "glyph = Glyph(Input=reader, GlyphType='Cone')\n"
            "glyph.Scalars = ['POINTS', 'var0']\n"
        )
        result = run_script(script, working_dir=work_dir)
        assert not result.success
        assert result.error_type == "AttributeError"
        assert "AttributeError" in result.traceback_text
        assert "glyph.Scalars" in result.traceback_text
        assert 'File "script.py", line 4' in result.traceback_text

    def test_syntax_error_reported(self, work_dir):
        result = run_script("from paraview.simple import *\nx = (1\n", working_dir=work_dir)
        assert not result.success
        assert result.error_type == "SyntaxError"

    def test_name_error_reported(self, work_dir):
        result = run_script("from paraview.simple import *\nGetLookupTableForArray('x', 1)\n",
                            working_dir=work_dir)
        assert not result.success
        assert result.error_type == "NameError"

    def test_state_reset_between_runs(self, work_dir):
        executor = PvPythonExecutor(working_dir=work_dir)
        executor.run("from paraview.simple import *\nview = CreateView('RenderView')\n")
        result = executor.run(
            "from paraview.simple import *\n"
            "print('views', GetActiveView() is None)\n"
        )
        assert "views True" in result.stdout

    def test_paraview_module_not_leaked(self, work_dir):
        import sys

        run_script("import paraview.simple\n", working_dir=work_dir)
        assert "paraview" not in sys.modules or not hasattr(sys.modules.get("paraview"), "__fake__")

    def test_output_property_combines_streams(self, work_dir):
        result = run_script("print('hello')\nraise RuntimeError('boom')\n", working_dir=work_dir)
        assert "hello" in result.output
        assert "RuntimeError: boom" in result.output
