"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    generate_can_points,
    generate_disk_flow,
    generate_marschner_lobb,
    generate_random_point_cloud,
    generate_structured_scalar_field,
    generate_vortex_field,
    marschner_lobb_function,
    write_can_points,
    write_disk_flow,
    write_marschner_lobb,
)
from repro.data.disk_flow import disk_temperature, disk_velocity
from repro.io import read_exodus, read_vtk


class TestMarschnerLobb:
    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(0)
        x, y, z = rng.uniform(-1, 1, (3, 500))
        values = marschner_lobb_function(x, y, z)
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_symmetry_in_xy(self):
        v1 = marschner_lobb_function(0.3, 0.4, 0.1)
        v2 = marschner_lobb_function(-0.3, -0.4, 0.1)
        assert v1 == pytest.approx(v2)

    def test_generate_dimensions_and_array(self):
        volume = generate_marschner_lobb(16)
        assert volume.dimensions == (16, 16, 16)
        assert "var0" in volume.point_data
        assert volume.bounds().as_tuple() == (-1, 1, -1, 1, -1, 1)

    def test_isovalue_05_is_crossed(self):
        volume = generate_marschner_lobb(16)
        lo, hi = volume.scalar_range("var0")
        assert lo < 0.5 < hi

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            generate_marschner_lobb(1)

    def test_write_roundtrip(self, work_dir):
        path = write_marschner_lobb(work_dir / "ml.vtk", resolution=12)
        back = read_vtk(path)
        assert back.n_points == 12 ** 3
        assert "var0" in back.point_data

    def test_custom_array_name(self):
        volume = generate_marschner_lobb(8, array_name="rho")
        assert "rho" in volume.point_data


class TestCanPoints:
    def test_structure(self):
        grid = generate_can_points(200, seed=1)
        assert grid.n_points == 200
        assert grid.n_cells == 200  # vertex cells
        assert "DISPL" in grid.point_data
        assert grid.point_data["DISPL"].n_components == 3

    def test_deterministic_for_seed(self):
        a = generate_can_points(100, seed=5)
        b = generate_can_points(100, seed=5)
        assert np.allclose(a.points, b.points)

    def test_different_seeds_differ(self):
        a = generate_can_points(100, seed=5)
        b = generate_can_points(100, seed=6)
        assert not np.allclose(a.points, b.points)

    def test_dent_reduces_radius_on_positive_y(self):
        grid = generate_can_points(800, seed=2, jitter=0.0)
        radii = np.linalg.norm(grid.points[:, :2], axis=1)
        wall = radii > 0.5
        plus_y = grid.points[:, 1] > 0.3
        minus_y = grid.points[:, 1] < -0.3
        assert radii[wall & plus_y].mean() < radii[wall & minus_y].mean()

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            generate_can_points(5)

    def test_write_roundtrip(self, work_dir):
        path = write_can_points(work_dir / "can.ex2", n_points=60)
        back = read_exodus(path)
        assert back.n_points == 60


class TestDiskFlow:
    def test_arrays_present(self):
        grid = generate_disk_flow(4, 8, 4)
        assert {"V", "Temp", "Pres"}.issubset(set(grid.point_data.names()))
        assert grid.point_data["V"].n_components == 3

    def test_hexahedral_cells(self):
        grid = generate_disk_flow(4, 8, 4)
        assert grid.n_cells == (4 - 1) * 8 * (4 - 1)
        assert grid.has_volumetric_cells()

    def test_velocity_swirls_around_z(self):
        points = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        v = disk_velocity(points)
        # tangential: at +x the velocity points toward +y, at +y toward -x
        assert v[0, 1] > 0
        assert v[1, 0] < 0

    def test_temperature_decays_with_radius(self):
        near = disk_temperature(np.array([[0.1, 0.0, 0.0]]))[0]
        far = disk_temperature(np.array([[3.0, 0.0, 0.0]]))[0]
        assert near > far >= 300.0 - 1e-9

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            generate_disk_flow(1, 8, 4)

    def test_write_roundtrip(self, work_dir):
        path = write_disk_flow(work_dir / "disk.ex2", 4, 8, 4)
        back = read_exodus(path)
        assert "V" in back.point_data and "Temp" in back.point_data


class TestGenericGenerators:
    def test_structured_scalar_field_default_is_radial(self):
        field = generate_structured_scalar_field(11)  # odd count: node at the origin
        values = field.point_data["scalar"].as_scalar()
        assert values.max() == pytest.approx(1.0, abs=1e-9)
        # corners (largest radius) hold the minimum
        assert values.min() == pytest.approx(1.0 - np.sqrt(3.0), abs=1e-9)

    def test_structured_scalar_custom_function(self):
        field = generate_structured_scalar_field(6, function=lambda x, y, z: x)
        lo, hi = field.scalar_range("scalar")
        assert lo == pytest.approx(-1.0)
        assert hi == pytest.approx(1.0)

    def test_vortex_field_vectors(self):
        field = generate_vortex_field(8)
        assert field.point_data["velocity"].n_components == 3
        assert "speed" in field.point_data

    def test_random_point_cloud(self):
        cloud = generate_random_point_cloud(50, seed=1)
        assert cloud.n_points == 50
        assert cloud.n_cells == 50
        assert "value" in cloud.point_data
