"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import clip_polydata, contour, trilinear_interpolate
from repro.algorithms.implicit import plane_signed_distance
from repro.datamodel import Bounds, DataArray, ImageData, PolyData
from repro.io.png import read_png, write_png
from repro.llm.nl_parser import parse_request
from repro.rendering.colormaps import get_colormap
from repro.rendering.transforms import look_at_matrix, rotation_about_axis

_settings = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@_settings
@given(
    values=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 40), st.integers(1, 4)),
        elements=finite_floats,
    )
)
def test_dataarray_range_bounds_values(values):
    arr = DataArray("a", values)
    lo, hi = arr.range()
    mags = arr.as_scalar()
    assert lo <= hi
    assert lo == pytest.approx(mags.min())
    assert hi == pytest.approx(mags.max())


@_settings
@given(
    values=hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(2, 30),), elements=finite_floats),
    t=st.floats(min_value=0.0, max_value=1.0),
)
def test_dataarray_interpolation_between_endpoints(values, t):
    arr = DataArray("a", values)
    out = arr.interpolate([0], [1], [t]).as_scalar()[0]
    lo, hi = sorted((values[0], values[1]))
    assert lo - 1e-9 <= out <= hi + 1e-9


@_settings
@given(
    points=hnp.arrays(
        dtype=np.float64, shape=st.tuples(st.integers(1, 50), st.just(3)), elements=finite_floats
    )
)
def test_bounds_contain_their_points(points):
    bounds = Bounds.from_points(points)
    assert bounds.contains_points(points, tol=1e-9).all()
    assert bounds.diagonal >= 0.0


@_settings
@given(
    points=hnp.arrays(
        dtype=np.float64, shape=st.tuples(st.integers(2, 40), st.just(3)), elements=finite_floats
    )
)
def test_bounds_union_is_monotonic(points):
    half = points.shape[0] // 2
    a = Bounds.from_points(points[:half])
    b = Bounds.from_points(points[half:])
    union = a.union(b)
    assert union.contains_points(points, tol=1e-9).all()


@_settings
@given(
    origin=st.tuples(finite_floats, finite_floats, finite_floats),
    normal=st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    ).filter(lambda n: np.linalg.norm(n) > 1e-3),
    points=hnp.arrays(
        dtype=np.float64, shape=st.tuples(st.integers(1, 30), st.just(3)), elements=finite_floats
    ),
)
def test_plane_distance_sign_flips_with_normal(origin, normal, points):
    d1 = plane_signed_distance(points, origin, normal)
    d2 = plane_signed_distance(points, origin, tuple(-n for n in normal))
    assert np.allclose(d1, -d2, atol=1e-6)


@_settings
@given(
    image=hnp.arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 24), st.integers(1, 24), st.just(3)),
        elements=st.integers(0, 255),
    )
)
def test_png_roundtrip_property(image):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "img.png"
        write_png(path, image)
        assert np.array_equal(read_png(path), image)


@_settings
@given(
    seed=st.integers(0, 10_000),
    isovalue=st.floats(min_value=0.2, max_value=0.8),
)
def test_level_set_points_interpolate_to_isovalue(seed, isovalue):
    rng = np.random.default_rng(seed)
    img = ImageData((5, 5, 5))
    img.add_point_array("f", rng.random(125))
    surface = contour(img, isovalue, "f", compute_normals=False)
    if surface.n_points:
        assert np.allclose(surface.point_data["f"].as_scalar(), isovalue, atol=1e-9)
        # surface stays inside the dataset bounds
        assert img.bounds().expanded(absolute=1e-9).contains_points(surface.points).all()


@_settings
@given(seed=st.integers(0, 10_000), x=st.floats(min_value=-0.9, max_value=0.9))
def test_clip_partitions_triangle_area(seed, x):
    rng = np.random.default_rng(seed)
    points = rng.uniform(-1, 1, (12, 3))
    triangles = np.arange(12).reshape(4, 3)
    poly = PolyData(points=points, triangles=triangles)
    left = clip_polydata(poly, origin=(x, 0, 0), normal=(1, 0, 0), keep_negative=True)
    right = clip_polydata(poly, origin=(x, 0, 0), normal=(1, 0, 0), keep_negative=False)
    assert left.surface_area() + right.surface_area() == pytest.approx(poly.surface_area(), rel=1e-6)


@_settings
@given(
    seed=st.integers(0, 1000),
    scalars=st.floats(min_value=-5, max_value=5),
)
def test_lookup_table_output_in_unit_cube(seed, scalars):
    lut = get_colormap("Cool to Warm", scalar_range=(-1.0, 1.0))
    rgb = lut.map_scalars(np.array([scalars]))
    assert np.all(rgb >= 0.0) and np.all(rgb <= 1.0)


@_settings
@given(
    axis=st.tuples(
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
    ).filter(lambda a: np.linalg.norm(a) > 1e-3),
    angle=st.floats(min_value=-360, max_value=360),
)
def test_rotation_preserves_length(axis, angle):
    rot = rotation_about_axis(axis, angle)[:3, :3]
    vector = np.array([1.0, 2.0, 3.0])
    assert np.linalg.norm(rot @ vector) == pytest.approx(np.linalg.norm(vector), rel=1e-9)
    assert np.linalg.det(rot) == pytest.approx(1.0, abs=1e-9)


@_settings
@given(
    eye=st.tuples(finite_floats, finite_floats, finite_floats),
    target=st.tuples(finite_floats, finite_floats, finite_floats),
)
def test_look_at_is_rigid_transform(eye, target):
    if np.allclose(eye, target):
        return
    view = look_at_matrix(eye, target, (0, 0, 1))
    rotation = view[:3, :3]
    assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-9)


@_settings
@given(
    filename=st.from_regex(r"[a-z][a-z0-9\-]{0,10}\.vtk", fullmatch=True),
    value=st.floats(min_value=-10, max_value=10, allow_nan=False).map(lambda v: round(v, 3)),
    width=st.integers(100, 4000),
    height=st.integers(100, 4000),
)
def test_parser_finds_core_fields(filename, value, width, height):
    prompt = (
        f"Please generate a ParaView Python script. Read in the file named {filename}. "
        f"Generate an isosurface of the variable rho at value {value}. "
        f"Save a screenshot of the result in the filename out.png. "
        f"The rendered view and saved screenshot should be {width} x {height} pixels."
    )
    plan = parse_request(prompt)
    assert plan.filenames() == [filename]
    assert plan.first("isosurface").params["value"] == pytest.approx(value, abs=1e-6)
    assert plan.resolution() == (width, height)
    assert plan.screenshot_filename() == "out.png"


@_settings
@given(
    query=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 20), st.just(3)),
        elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    )
)
def test_trilinear_interpolation_within_data_range(query, sphere_field):
    values = trilinear_interpolate(sphere_field, "scalar", query)
    lo, hi = sphere_field.scalar_range("scalar")
    assert np.all(values >= lo - 1e-9)
    assert np.all(values <= hi + 1e-9)
