"""End-to-end integration tests crossing all subsystems."""

import pytest

from repro.core import CANONICAL_TASKS, ChatVis, get_task, prepare_task_data
from repro.eval import run_ground_truth
from repro.eval.harness import scaled_prompt
from repro.eval.image_metrics import image_coverage, mean_squared_error
from repro.io.png import read_png
from repro.llm import get_model
from repro.pvsim import run_script

RESOLUTION = (160, 120)


@pytest.fixture(scope="module")
def shared_task_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("integration")
    for task in CANONICAL_TASKS.values():
        prepare_task_data(task, directory, small=True)
    return directory


class TestFullPipelines:
    """Each canonical pipeline: ChatVis output matches the ground truth image."""

    @pytest.mark.parametrize("task_name", ["isosurface", "slice_contour", "delaunay"])
    def test_chatvis_matches_ground_truth(self, task_name, tmp_path):
        task = get_task(task_name)
        gt_dir = tmp_path / "gt"
        cv_dir = tmp_path / "cv"
        prepare_task_data(task, gt_dir, small=True)
        prepare_task_data(task, cv_dir, small=True)

        gt = run_ground_truth(task, gt_dir, resolution=RESOLUTION)
        assert gt.produced_screenshot

        assistant = ChatVis("gpt-4", working_dir=cv_dir)
        run = assistant.run(scaled_prompt(task, RESOLUTION))
        assert run.success, run.summary()

        mse = mean_squared_error(run.screenshots[0], gt.screenshots[0])
        assert mse < 0.01  # visually identical

    def test_volume_rendering_produces_content(self, tmp_path):
        task = get_task("volume_render")
        prepare_task_data(task, tmp_path, small=True)
        assistant = ChatVis("gpt-4", working_dir=tmp_path)
        run = assistant.run(scaled_prompt(task, RESOLUTION))
        assert run.success
        assert image_coverage(run.screenshots[0]) > 0.03

    def test_streamlines_end_to_end(self, tmp_path):
        task = get_task("streamlines")
        prepare_task_data(task, tmp_path, small=True)
        assistant = ChatVis("gpt-4", working_dir=tmp_path)
        run = assistant.run(scaled_prompt(task, RESOLUTION))
        assert run.success
        image = read_png(run.screenshots[0])
        assert image.shape[:2] == (RESOLUTION[1], RESOLUTION[0])
        assert image_coverage(run.screenshots[0]) > 0.01


class TestScreenshotProperties:
    def test_screenshot_resolution_matches_request(self, shared_task_dir):
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "contour = Contour(Input=reader, ContourBy=['POINTS', 'var0'], Isosurfaces=[0.5])\n"
            "view = GetActiveViewOrCreate('RenderView')\n"
            "Show(contour, view)\n"
            "ResetCamera(view)\n"
            "SaveScreenshot('sized.png', view, ImageResolution=[200, 100])\n"
        )
        result = run_script(script, working_dir=shared_task_dir)
        assert result.success
        image = read_png(shared_task_dir / "sized.png")
        assert image.shape[:2] == (100, 200)

    def test_white_background_override(self, shared_task_dir):
        script = (
            "from paraview.simple import *\n"
            "reader = LegacyVTKReader(FileNames=['ml-100.vtk'])\n"
            "view = GetActiveViewOrCreate('RenderView')\n"
            "view.Background = [0.2, 0.2, 0.2]\n"
            "Show(reader, view)\n"
            "ResetCamera(view)\n"
            "SaveScreenshot('white.png', view, ImageResolution=[64, 48],\n"
            "               OverrideColorPalette='WhiteBackground')\n"
            "SaveScreenshot('gray.png', view, ImageResolution=[64, 48])\n"
        )
        result = run_script(script, working_dir=shared_task_dir)
        assert result.success
        white = read_png(shared_task_dir / "white.png").astype(float) / 255.0
        gray = read_png(shared_task_dir / "gray.png").astype(float) / 255.0
        assert white.mean() > gray.mean()


class TestUnassistedBaselineBehaviour:
    def test_gpt4_slice_contour_fails_with_attribute_error(self, tmp_path):
        task = get_task("slice_contour")
        prepare_task_data(task, tmp_path, small=True)
        model = get_model("gpt-4")
        from repro.llm.base import user
        from repro.llm.codegen import extract_code_block

        script = extract_code_block(model.complete([user(scaled_prompt(task, RESOLUTION))]).text)
        result = run_script(script, working_dir=tmp_path)
        assert not result.success
        assert result.error_type in ("AttributeError", "NameError")

    def test_gpt4_volume_runs_but_misses_content(self, tmp_path):
        task = get_task("volume_render")
        prepare_task_data(task, tmp_path, small=True)
        gt = run_ground_truth(task, tmp_path, resolution=RESOLUTION, screenshot="gt.png")
        from repro.eval.harness import run_unassisted

        _script, result = run_unassisted("gpt-4", task, tmp_path, resolution=RESOLUTION)
        # the script executes (no API errors) ...
        assert result.success
        # ... but the screenshot shows (nearly) uniform background instead of
        # the volume-rendered structure the ground truth contains
        if result.produced_screenshot:
            generated = read_png(result.screenshots[0]).astype(float) / 255.0
            reference = read_png(gt.screenshots[0]).astype(float) / 255.0
            assert generated.std() < reference.std() * 0.5
