"""Shared fixtures for the test suite.

All fixtures use deliberately small datasets and image resolutions so that
the full suite runs in a couple of minutes on a laptop; the benchmark suite
is where full-size runs live.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.data import (
    generate_can_points,
    generate_disk_flow,
    generate_marschner_lobb,
    generate_structured_scalar_field,
    generate_vortex_field,
)


@pytest.fixture(scope="session")
def marschner_lobb_small():
    """A 20^3 Marschner-Lobb volume (session-scoped: read-only in tests)."""
    return generate_marschner_lobb(20)


@pytest.fixture(scope="session")
def sphere_field():
    """A radial field whose 0.5 level set is a sphere of radius 0.5."""
    return generate_structured_scalar_field(20)


@pytest.fixture(scope="session")
def vortex_field():
    return generate_vortex_field(12)


@pytest.fixture(scope="session")
def disk_flow_small():
    return generate_disk_flow(5, 12, 5)


@pytest.fixture(scope="session")
def can_points_small():
    return generate_can_points(120, seed=3)


@pytest.fixture()
def work_dir(tmp_path: Path) -> Path:
    """A per-test working directory."""
    return tmp_path


@pytest.fixture(scope="session")
def task_data_dir(tmp_path_factory) -> Path:
    """A session-scoped directory with the three task input files (small)."""
    from repro.core.tasks import CANONICAL_TASKS, prepare_task_data

    directory = tmp_path_factory.mktemp("task_data")
    for task in CANONICAL_TASKS.values():
        prepare_task_data(task, directory, small=True)
    return directory


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


TEST_RESOLUTION = (160, 120)


@pytest.fixture(scope="session")
def test_resolution():
    """Small render resolution used across rendering/integration tests."""
    return TEST_RESOLUTION
