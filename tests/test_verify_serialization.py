"""Property-based round-trips of :mod:`repro.datamodel.serialization`.

The verification layer's cache-parity relation only means something if the
disk tier hands back *exactly* what was stored — so these tests drive the
framed/checksummed payload codec with hypothesis-generated ImageData,
PolyData and UnstructuredGrid payloads (NaN and empty-array edge cases
included) and judge the round-trip with the same tolerance-aware comparators
the relations use.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.datamodel import CellType, ImageData, PolyData, UnstructuredGrid
from repro.datamodel.serialization import (
    CachePayloadError,
    dumps_payload,
    loads_payload,
)
from repro.verify.comparators import datasets_close

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: finite-or-NaN float64 values (infinities excluded: fingerprints allow them,
#: but the synthetic generators never produce them)
_values = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, width=64),
    st.just(float("nan")),
)


def _assert_roundtrip_close(dataset):
    clone = loads_payload(dumps_payload(dataset))
    result = datasets_close(dataset, clone, atol=0.0, rtol=0.0)
    assert result.ok, result.details


# --------------------------------------------------------------------------- #
# ImageData
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(
    dims=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
    ),
    origin=st.tuples(*[st.floats(-10, 10) for _ in range(3)]),
    data=st.data(),
)
def test_image_data_roundtrip(dims, origin, data):
    image = ImageData(dimensions=dims, origin=origin, spacing=(0.5, 1.0, 2.0))
    n = image.n_points
    values = data.draw(hnp.arrays(np.float64, (n,), elements=_values))
    image.add_point_array("var0", values)
    _assert_roundtrip_close(image)

    clone = loads_payload(dumps_payload(image))
    assert clone.dimensions == image.dimensions
    assert np.allclose(clone.origin, image.origin)
    assert np.array_equal(
        clone.point_data["var0"].values, image.point_data["var0"].values, equal_nan=True
    )


def test_image_data_nan_payload_roundtrips_bit_exact():
    image = ImageData(dimensions=(2, 2, 2))
    values = np.array([0.0, np.nan, 1.5, -np.inf, np.inf, np.nan, 2.0, -0.0])
    image.add_point_array("var0", values)
    clone = loads_payload(dumps_payload(image))
    out = clone.point_data["var0"].values.ravel()
    assert np.array_equal(out, values, equal_nan=True)
    # signed zero survives too (bit-exactness, not just numeric equality)
    assert np.signbit(out[-1])


# --------------------------------------------------------------------------- #
# PolyData
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(
    n_points=st.integers(min_value=3, max_value=40),
    n_triangles=st.integers(min_value=0, max_value=30),
    data=st.data(),
)
def test_polydata_roundtrip(n_points, n_triangles, data):
    points = data.draw(
        hnp.arrays(np.float64, (n_points, 3), elements=st.floats(-100, 100, width=64))
    )
    triangles = data.draw(
        hnp.arrays(
            np.int64,
            (n_triangles, 3),
            elements=st.integers(min_value=0, max_value=n_points - 1),
        )
    )
    poly = PolyData(points=points, triangles=triangles)
    scalars = data.draw(hnp.arrays(np.float64, (n_points,), elements=_values))
    poly.add_point_array("Temp", scalars)
    _assert_roundtrip_close(poly)

    clone = loads_payload(dumps_payload(poly))
    assert np.array_equal(clone.triangles, poly.triangles)


def test_polydata_empty_arrays_roundtrip():
    poly = PolyData()  # zero points, zero triangles, zero lines
    clone = loads_payload(dumps_payload(poly))
    assert clone.n_points == 0
    assert clone.triangles.shape == (0, 3)
    assert clone.verts.shape == (0,)


# --------------------------------------------------------------------------- #
# UnstructuredGrid
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(
    n_points=st.integers(min_value=4, max_value=30),
    n_tets=st.integers(min_value=0, max_value=15),
    data=st.data(),
)
def test_unstructured_roundtrip(n_points, n_tets, data):
    points = data.draw(
        hnp.arrays(np.float64, (n_points, 3), elements=st.floats(-50, 50, width=64))
    )
    grid = UnstructuredGrid(points)
    for _ in range(n_tets):
        conn = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_points - 1),
                min_size=4, max_size=4,
            )
        )
        grid.add_cell(CellType.TETRA, conn)
    scalars = data.draw(hnp.arrays(np.float64, (n_points,), elements=_values))
    grid.add_point_array("var0", scalars)
    _assert_roundtrip_close(grid)

    clone = loads_payload(dumps_payload(grid))
    assert list(clone.cells()) == list(grid.cells())


def test_unstructured_empty_grid_roundtrips():
    grid = UnstructuredGrid()
    clone = loads_payload(dumps_payload(grid))
    assert clone.n_points == 0
    assert clone.n_cells == 0


# --------------------------------------------------------------------------- #
# fingerprint stability across the boundary
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(data=st.data())
def test_fingerprint_survives_roundtrip(data):
    image = ImageData(dimensions=(3, 3, 2))
    values = data.draw(hnp.arrays(np.float64, (image.n_points,), elements=_values))
    image.add_point_array("var0", values)
    fingerprint = image.content_fingerprint()
    clone = loads_payload(dumps_payload(image))
    assert clone.content_fingerprint() == fingerprint


# --------------------------------------------------------------------------- #
# corruption: the framing must catch every byte-level mutation
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(
    flip_at=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_any_single_byte_flip_is_rejected_or_detected(flip_at, data):
    image = ImageData(dimensions=(2, 3, 2))
    values = data.draw(
        hnp.arrays(np.float64, (image.n_points,), elements=st.floats(-1, 1, width=64))
    )
    image.add_point_array("var0", values)
    payload = bytearray(dumps_payload(image))
    flip_at %= len(payload)
    payload[flip_at] ^= 0xFF
    with pytest.raises(CachePayloadError):
        loads_payload(bytes(payload))


def test_truncated_payload_is_rejected():
    image = ImageData(dimensions=(2, 2, 2))
    image.add_point_array("var0", np.zeros(8))
    payload = dumps_payload(image)
    for cut in (0, 3, 10, len(payload) - 1):
        with pytest.raises(CachePayloadError):
            loads_payload(payload[:cut])
