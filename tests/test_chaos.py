"""Chaos parity: a faulted suite run must equal the fault-free run, byte for byte.

The acceptance demo for the fault-injection subsystem: the canonical suite
runs under a seeded plan mixing worker SIGKILLs (10 %), job hangs (5 %,
longer than the job timeout), and cache-payload corruption (5 %) — and
finishes with records *byte-identical* (timing fields stripped) to a
fault-free run.  Seed 19 is chosen so the plan actually bites on this
suite: at least one worker kill and one hang fire at attempt 0, and no
cell draws three consecutive kills (which would legitimately quarantine
it).  The CLI exit-code contract and ``repro suite diff`` ride along.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine.cache import CACHE_DIR_ENV_VAR
from repro.faults import FaultPlan, FaultSpec, FaultRuntime, disable_faults, enable_faults
from repro.obs import METRICS, disable_tracing
from repro.pvsim import state
from repro.scenarios import SuiteRunner, SuiteStore, canonical_scenarios
from repro.scenarios.suite import strip_timing

#: the canonical chaos plan — committed to in docs/robustness.md and CI
CHAOS_SEED = 19
JOB_TIMEOUT = 2.0
JOB_RETRIES = 3


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=CHAOS_SEED,
        faults=[
            FaultSpec(kind="worker-kill", site="batch.worker", probability=0.10),
            FaultSpec(kind="hang", site="batch.job", probability=0.05, seconds=5.0),
            FaultSpec(kind="cache-corrupt", site="cache.disk.write", probability=0.05),
        ],
    )


@pytest.fixture(autouse=True)
def _hermetic(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
    state.reset_session()
    disable_faults()
    disable_tracing()
    METRICS.reset()
    yield
    state.reset_session()
    disable_faults()
    disable_tracing()
    METRICS.reset()


def _run_canonical(root, plan=None) -> SuiteStore:
    if plan is not None:
        enable_faults(plan)
    try:
        summary = SuiteRunner(
            canonical_scenarios(),
            methods=("gpt-4",),
            working_dir=root / "work",
            store=root / "results.jsonl",
            executor="process",
            max_workers=2,
            cache_dir=root / "cache",
            job_timeout=JOB_TIMEOUT if plan is not None else None,
            job_retries=JOB_RETRIES if plan is not None else 0,
        ).run()
    finally:
        if plan is not None:
            disable_faults()
    assert not summary.failures, summary.failures
    return SuiteStore(root / "results.jsonl")


def _canonical_records(store: SuiteStore):
    return {
        key: json.dumps(strip_timing(record), sort_keys=True)
        for key, record in store.load().items()
        if not record.get("failed")
    }


class TestChaosParity:
    def test_seed_actually_bites(self):
        """Guard the seed choice: the plan must inject real chaos on this
        suite (≥1 kill, ≥1 hang at attempt 0) without ever drawing the
        three consecutive kills that would legitimately quarantine a cell."""
        plan = chaos_plan()
        runtime = FaultRuntime(plan)
        names = [f"gpt-4/{s.name}" for s in canonical_scenarios()]
        kills_at_zero = [n for n in names if runtime.predict_kill("batch.worker", n, 0)]
        hangs_at_zero = [
            n for n in names if plan.unit(1, "batch.job", n, f"{n}#0", 0) < 0.05
        ]
        assert kills_at_zero, "seed never kills a worker — chaos run proves nothing"
        assert hangs_at_zero, "seed never hangs a job — chaos run proves nothing"
        for name in names:
            streak = 0
            while runtime.predict_kill("batch.worker", name, streak):
                streak += 1
            assert streak < 3, f"{name} would be quarantined (kills {streak} straight attempts)"

    def test_chaos_run_is_byte_identical_to_fault_free_run(self, tmp_path):
        baseline = _canonical_records(_run_canonical(tmp_path / "base"))
        assert not METRICS.snapshot().counter_total("fault_injected_total")
        assert not METRICS.snapshot().counter_total("recovery_total")

        METRICS.reset()
        state.reset_session()
        chaos = _canonical_records(_run_canonical(tmp_path / "chaos", plan=chaos_plan()))

        # the run absorbed real faults ...
        snap = METRICS.snapshot()
        assert snap.counter_total("recovery_total", action="pool-restart") >= 1.0
        assert snap.counter_total("recovery_total", action="timeout") >= 1.0
        # ... and still produced the exact fault-free records
        assert set(chaos) == set(baseline)
        assert chaos == baseline

    def test_cli_diff_and_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
        plan_path = chaos_plan().save(tmp_path / "plan.json")

        # two fault-free runs into separate stores diff clean (exit 0)
        for name in ("a", "b"):
            assert (
                main(
                    [
                        "suite",
                        "run",
                        str(tmp_path / name),
                        "--limit",
                        "2",
                        "--no-llm-cache",
                    ]
                )
                == 0
            )
        assert (
            main(
                [
                    "suite",
                    "diff",
                    str(tmp_path / "a" / "suite-results.jsonl"),
                    str(tmp_path / "b" / "suite-results.jsonl"),
                ]
            )
            == 0
        )
        assert "stores match" in capsys.readouterr().out

        # a run whose cells die under a persistent fault completes with
        # failure records and exits 3 — the "completed with failures" code
        doom = FaultPlan(
            faults=[
                FaultSpec(kind="exception", site="batch.job", times=[0], retryable=False)
            ]
        ).save(tmp_path / "doom.json")
        code = main(
            [
                "suite",
                "run",
                str(tmp_path / "doomed"),
                "--limit",
                "2",
                "--no-llm-cache",
                "--faults",
                str(doom),
            ]
        )
        assert code == 3
        assert not disable_faults()  # main() uninstalled the plan on exit
        doomed_store = SuiteStore(tmp_path / "doomed" / "suite-results.jsonl")
        records = doomed_store.load()
        assert records and all(r.get("failed") for r in records.values())

        # the faulted store differs from a healthy one (exit 1): failed
        # records are skipped, so the cells are simply missing
        assert (
            main(
                [
                    "suite",
                    "diff",
                    str(tmp_path / "a" / "suite-results.jsonl"),
                    str(tmp_path / "doomed" / "suite-results.jsonl"),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "only in" in out and "differing" in out
