#!/usr/bin/env python
"""Docs checker: intra-repo markdown links + runnable guide snippets.

Two checks, both fatal on failure:

1. **Links** — every relative markdown link in README.md, ROADMAP.md and
   ``docs/*.md`` must point at a file that exists in the repo.  External
   (``http(s)://``, ``mailto:``) and pure-anchor links are skipped.

2. **Snippets** — every ```` ```bash ```` block in each guide listed in
   ``SNIPPET_DOCS`` (``docs/evaluating.md``, ``docs/observability.md``,
   ``docs/robustness.md``, ``docs/sharding.md``) is
   executed, in document order, in one scratch directory per guide with
   ``REPRO_CACHE_DIR`` pointed at scratch storage.  A ``repro`` shell
   function forwards to ``python -m repro.cli`` so the snippets run whether
   or not the console script is installed.

Usage::

    python scripts/check_docs.py              # both checks
    python scripts/check_docs.py --links-only
    python scripts/check_docs.py --snippets-only
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
LINK_SOURCES = ("README.md", "ROADMAP.md")
SNIPPET_DOCS = (
    REPO_ROOT / "docs" / "evaluating.md",
    REPO_ROOT / "docs" / "observability.md",
    REPO_ROOT / "docs" / "robustness.md",
    REPO_ROOT / "docs" / "sharding.md",
)

# [text](target) — deliberately naive; good enough for hand-written docs.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")


def iter_markdown_files() -> List[Path]:
    files = [REPO_ROOT / name for name in LINK_SOURCES if (REPO_ROOT / name).exists()]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def check_links() -> List[str]:
    """Return a list of human-readable failures (empty means all links resolve)."""
    failures: List[str] = []
    for md in iter_markdown_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    rel = md.relative_to(REPO_ROOT)
                    failures.append(f"{rel}:{lineno}: broken link -> {target}")
    return failures


def extract_bash_blocks(doc: Path) -> List[Tuple[int, str]]:
    """Return (starting line, script text) for each ```bash block in *doc*."""
    blocks: List[Tuple[int, str]] = []
    lines = doc.read_text().splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i].strip())
        if match and match.group(1) == "bash":
            start = i + 1
            body: List[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body)))
        i += 1
    return blocks


def _run_doc_snippets(doc: Path, verbose: bool) -> List[str]:
    """Execute every bash block from one guide in its own scratch dir."""
    if not doc.exists():
        return [f"missing snippet doc: {doc.relative_to(REPO_ROOT)}"]
    blocks = extract_bash_blocks(doc)
    if not blocks:
        return [f"{doc.relative_to(REPO_ROOT)}: no ```bash blocks found"]

    failures: List[str] = []
    prologue = (
        "set -euo pipefail\n"
        'repro() { "$DOCS_PYTHON" -m repro.cli "$@"; }\n'
    )
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        env = dict(os.environ)
        env["DOCS_PYTHON"] = sys.executable
        env["REPRO_CACHE_DIR"] = str(Path(scratch) / "cache")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
        )
        for lineno, body in blocks:
            label = f"{doc.relative_to(REPO_ROOT)}:{lineno}"
            if verbose:
                first = body.strip().splitlines()[0] if body.strip() else "<empty>"
                print(f"[snippet] {label}: {first}", flush=True)
            proc = subprocess.run(
                ["bash", "-c", prologue + body],
                cwd=scratch,
                env=env,
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                tail = (proc.stdout + proc.stderr).strip().splitlines()[-15:]
                failures.append(
                    f"{label}: exit {proc.returncode}\n    " + "\n    ".join(tail)
                )
    return failures


def run_snippets(verbose: bool = True) -> List[str]:
    """Execute every bash block from every guide; return failures."""
    failures: List[str] = []
    for doc in SNIPPET_DOCS:
        failures.extend(_run_doc_snippets(doc, verbose))
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--links-only", action="store_true", help="skip snippet execution")
    group.add_argument("--snippets-only", action="store_true", help="skip the link check")
    parser.add_argument("--quiet", action="store_true", help="suppress per-snippet progress")
    ns = parser.parse_args(argv)

    failures: List[str] = []
    if not ns.snippets_only:
        failures.extend(check_links())
        if not failures:
            print(f"links: {len(iter_markdown_files())} markdown files, all intra-repo links resolve")
    if not ns.links_only and not failures:
        snippet_failures = run_snippets(verbose=not ns.quiet)
        if not snippet_failures:
            names = ", ".join(str(doc.relative_to(REPO_ROOT)) for doc in SNIPPET_DOCS)
            print(f"snippets: every ```bash block in {names} ran cleanly")
        failures.extend(snippet_failures)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
