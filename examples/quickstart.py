#!/usr/bin/env python
"""Quickstart: ask ChatVis for an isosurface in plain English.

This is the paper's headline workflow end-to-end:

1. generate the Marschner-Lobb sample volume (the stand-in for ``ml-100.vtk``),
2. hand ChatVis a natural-language request,
3. let the assistant generate the ParaView Python script, execute it under the
   PvPython-like executor, and iterate on any errors,
4. inspect the resulting script and screenshot.

Run it with::

    python examples/quickstart.py [output_directory]
"""

import sys
from pathlib import Path

from repro.core import ChatVis
from repro.data import write_marschner_lobb


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("quickstart_output")
    workdir.mkdir(parents=True, exist_ok=True)

    # 1. sample data (the paper uses a 100^3 volume; 48^3 keeps this snappy)
    write_marschner_lobb(workdir / "ml-100.vtk", resolution=48)

    # 2. the natural-language request (verbatim from the paper, smaller image)
    request = (
        "Please generate a ParaView Python script for the following operations. "
        "Read in the file named ml-100.vtk. Generate an isosurface of the variable "
        "var0 at value 0.5. Save a screenshot of the result in the filename "
        "ml-iso-screenshot.png. The rendered view and saved screenshot should be "
        "960 x 540 pixels."
    )

    # 3. run the assistant (a simulated GPT-4 by default; pass any registered
    #    model name, or an ExternalOpenAIClient wrapping a real OpenAI client)
    assistant = ChatVis("gpt-4", working_dir=workdir)
    result = assistant.run(request)

    # 4. report
    print(result.summary())
    print("\nGenerated step-by-step prompt:\n" + result.generated_prompt)
    print("\nFinal script:\n" + result.final_script)
    if result.success:
        print(f"Screenshot written to: {result.screenshots[0]}")
    else:
        print("The assistant did not converge; inspect result.iterations for details.")
    return 0 if result.success else 1


if __name__ == "__main__":
    raise SystemExit(main())
