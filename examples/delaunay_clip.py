#!/usr/bin/env python
"""Using the ParaView-compatible scripting layer directly (no LLM involved).

ChatVis generates ``paraview.simple`` scripts — but the substrate is a usable
library on its own.  This example builds the paper's Delaunay pipeline
(point cloud → Delaunay3D → plane clip → wireframe screenshot) by hand, then
runs the equivalent script text through the PvPython-like executor and checks
the two results agree.

Run with::

    python examples/delaunay_clip.py [output_directory]
"""

import sys
from pathlib import Path

from repro.data import write_can_points
from repro.eval.image_metrics import mean_squared_error
from repro.pvsim import run_script, simple
from repro.pvsim import state


def build_with_api(workdir: Path) -> Path:
    """Drive the proxies directly, exactly like a ParaView Python console."""
    state.reset_session()
    reader = simple.ExodusIIReader(FileName=str(workdir / "can_points.ex2"))
    delaunay = simple.Delaunay3D(Input=reader)
    clip = simple.Clip(Input=delaunay)
    clip.ClipType.Origin = [0.0, 0.0, 0.0]
    clip.ClipType.Normal = [1.0, 0.0, 0.0]
    clip.Invert = 1

    view = simple.GetActiveViewOrCreate("RenderView")
    view.ViewSize = [640, 360]
    display = simple.Show(clip, view)
    display.SetRepresentationType("Wireframe")
    view.ApplyIsometricView()
    target = workdir / "api-screenshot.png"
    simple.SaveScreenshot(str(target), view, ImageResolution=[640, 360])
    return target


SCRIPT = """\
from paraview.simple import *

reader = ExodusIIReader(FileName='can_points.ex2')
delaunay = Delaunay3D(Input=reader)
clip = Clip(Input=delaunay)
clip.ClipType.Origin = [0.0, 0.0, 0.0]
clip.ClipType.Normal = [1.0, 0.0, 0.0]
clip.Invert = 1

view = GetActiveViewOrCreate('RenderView')
view.ViewSize = [640, 360]
display = Show(clip, view)
display.SetRepresentationType('Wireframe')
view.ApplyIsometricView()
SaveScreenshot('script-screenshot.png', view, ImageResolution=[640, 360])
"""


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("delaunay_output")
    workdir.mkdir(parents=True, exist_ok=True)
    write_can_points(workdir / "can_points.ex2", n_points=400)

    api_shot = build_with_api(workdir)
    print("API-driven pipeline wrote:", api_shot)

    result = run_script(SCRIPT, working_dir=workdir)
    print("script execution:", result.summary())

    if result.produced_screenshot:
        mse = mean_squared_error(api_shot, result.screenshots[0])
        print(f"API vs script screenshot MSE = {mse:.8f} (identical pipelines → ~0)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
