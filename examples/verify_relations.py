#!/usr/bin/env python
"""Walk through the metamorphic & differential verification layer.

Four stops:

1. the relation registry — what each built-in relation checks, and which
   relations apply to which scenarios;
2. a verification run over two canonical scenarios, with the markdown
   relation × family matrix;
3. the golden-artifact store — capture goldens, re-verify against them, and
   watch a doctored render produce a human-readable diff;
4. the oracle failing on purpose — an injected isovalue off-by-one-bin in
   the contour *variant* violates the commutation relations, proving the
   runner can actually catch a substrate regression.

Run it with::

    PYTHONPATH=src python examples/verify_relations.py
"""

import tempfile
from pathlib import Path

from repro.scenarios import build_verify_report, canonical_scenarios
from repro.verify import (
    GoldenStore,
    VerifyRunner,
    all_relations,
    inject_mutation,
    relations_for,
    run_verify_cell,
)
from repro.verify.pipelines import run_scenario_script, scenario_script

RESOLUTION = (128, 96)


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="verify-relations-"))
    scenarios = [
        s for s in canonical_scenarios() if s.name in ("isosurface", "slice_contour")
    ]

    # ------------------------------------------------------------------ #
    # 1. the registry
    # ------------------------------------------------------------------ #
    print("=== registered relations ===")
    for relation in all_relations():
        print(f"  {relation.name:<24s} {relation.description}")
    print()
    for scenario in canonical_scenarios():
        names = [r.name for r in relations_for(scenario)]
        print(f"  {scenario.name:<14s} -> {len(names)} applicable relation(s)")
    print()

    # ------------------------------------------------------------------ #
    # 2. a verification run (resumable JSONL verdict store)
    # ------------------------------------------------------------------ #
    print("=== verification run ===")
    runner = VerifyRunner(
        scenarios,
        working_dir=workspace / "run",
        store=workspace / "verify-results.jsonl",
        goldens_dir=workspace / "goldens",
        resolution=RESOLUTION,
    )
    runner.update_goldens()
    summary = runner.run()
    print(summary.describe())
    print()
    print(build_verify_report(summary.records).to_markdown())

    # ------------------------------------------------------------------ #
    # 3. goldens: a doctored render produces a readable mismatch summary
    # ------------------------------------------------------------------ #
    print("=== golden mismatch diagnostics ===")
    store = GoldenStore(workspace / "goldens")
    scenario = scenarios[0]
    entry = store.lookup(scenario, resolution=RESOLUTION)
    render = run_scenario_script(scenario, workspace / "doctored", resolution=RESOLUTION)
    doctored = render.image.copy()
    doctored[: doctored.shape[0] // 2] = 0  # paint the top half black
    verdict = store.compare(entry, doctored, scenario_script(scenario, RESOLUTION))
    print(f"  doctored render ok={verdict.ok}: {verdict.details}")
    print()

    # ------------------------------------------------------------------ #
    # 4. the oracle can fail: seeded mutation
    # ------------------------------------------------------------------ #
    print("=== seeded mutation (variant isovalue off by one bin) ===")
    with inject_mutation("contour-variant-isovalue", 0.05):
        record = run_verify_cell(
            scenario, "translate-commute", workspace / "mutant", resolution=RESOLUTION
        )
    print(f"  violation={record['violation']}: {record['details']}")
    assert record["violation"], "the mutation must be flagged"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
