#!/usr/bin/env python
"""Generate a scenario sweep, run it resumably, and render the report.

The scenario grammar turns the paper's five fixed tasks into a procedural
catalog: declarative specs sweep dataset parameters, pipeline operations,
camera/resolution, and prompt phrasing, and each expanded scenario is a
complete evaluation unit (rendered natural-language prompt, data recipes,
synthesized ground truth, deterministic key).  The suite runner executes
the scenario × model matrix against an append-only JSONL store — re-running
this script is a fully warm no-op that executes zero scenarios.

Run it with::

    PYTHONPATH=src python examples/scenario_suite.py
"""

import tempfile
from pathlib import Path

from repro.scenarios import (
    ScenarioSpec,
    SuiteRunner,
    generate_scenarios,
)
from repro.scenarios.spec import ViewSpec, isosurface, ops
from repro.core.tasks import DataRecipe


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="scenario-suite-"))

    # 1. a custom spec: one dataset × three isovalues × two phrasings = 6
    custom = ScenarioSpec(
        name="demo-iso",
        family="contour",
        datasets=(DataRecipe.make("ml-r18.vtk", "marschner_lobb", resolution=18),),
        operations=(
            ops("v0p35", isosurface(value=0.35)),
            ops("v0p5", isosurface(value=0.5)),
            ops("v0p65", isosurface(value=0.65)),
        ),
        views=(ViewSpec(resolution=(160, 120)),),
        phrasings=("paper", "terse"),
    )
    scenarios = custom.expand()
    # ... plus a slice of the built-in 40+ scenario catalog
    scenarios += generate_scenarios(spec="slice-positions")

    print(f"{len(scenarios)} scenarios:")
    for scenario in scenarios:
        print(f"  {scenario.describe()}")

    # 2. run the suite (cold), then again (warm: zero cells execute)
    def run_once() -> None:
        runner = SuiteRunner(
            scenarios,
            methods=("gpt-4", "codegemma"),
            working_dir=workspace / "work",
            store=workspace / "results.jsonl",
        )
        summary = runner.run()
        print(f"\nsuite: {summary.describe()}")

    run_once()
    run_once()  # resumable store: everything reused

    # 3. aggregate the store into the success/error report
    from repro.scenarios import load_report

    report = load_report(workspace / "results.jsonl")
    print()
    print(report.to_markdown())
    print(f"(workspace: {workspace})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
