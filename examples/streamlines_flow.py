#!/usr/bin/env python
"""Flow-visualization scenario: streamlines, tubes and glyphs of a disk flow.

Reproduces the paper's hardest pipeline (Figure 6 / Table I) three ways and
compares them:

* the hand-written ground-truth script,
* ChatVis (simulated GPT-4 with few-shot prompting and the correction loop),
* unassisted simulated GPT-4 (the paper's baseline, which hallucinates
  Glyph properties and fails).

Run with::

    python examples/streamlines_flow.py [output_directory]
"""

import sys
from pathlib import Path

from repro.core import ChatVis, get_task, prepare_task_data
from repro.eval import compare_scripts, run_ground_truth
from repro.eval.harness import run_unassisted, scaled_prompt
from repro.eval.image_metrics import mean_squared_error, structural_similarity

RESOLUTION = (640, 360)


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("streamlines_output")
    task = get_task("streamlines")

    # --- ground truth ------------------------------------------------------ #
    gt_dir = workdir / "ground_truth"
    prepare_task_data(task, gt_dir, small=True)
    gt = run_ground_truth(task, gt_dir, resolution=RESOLUTION)
    print("ground truth:", gt.summary())

    # --- ChatVis ------------------------------------------------------------ #
    cv_dir = workdir / "chatvis"
    prepare_task_data(task, cv_dir, small=True)
    assistant = ChatVis("gpt-4", working_dir=cv_dir)
    run = assistant.run(scaled_prompt(task, RESOLUTION))
    print("ChatVis:", run.summary())
    for record in run.iterations:
        status = "ok" if record.success else f"error: {record.error_type}"
        print(f"  iteration {record.index}: {status}")

    # --- unassisted GPT-4 --------------------------------------------------- #
    gpt4_dir = workdir / "gpt4"
    prepare_task_data(task, gpt4_dir, small=True)
    gpt4_script, gpt4_result = run_unassisted("gpt-4", task, gpt4_dir, resolution=RESOLUTION)
    print("unassisted GPT-4:", gpt4_result.summary())

    # --- comparisons --------------------------------------------------------- #
    if run.success and gt.produced_screenshot:
        mse = mean_squared_error(run.screenshots[0], gt.screenshots[0])
        ssim = structural_similarity(run.screenshots[0], gt.screenshots[0])
        print(f"ChatVis vs ground truth image: MSE={mse:.6f}  SSIM={ssim:.4f}")

    from repro.eval.ground_truth import ground_truth_script

    reference = ground_truth_script(task, resolution=RESOLUTION)
    print("ChatVis script analysis:", compare_scripts(run.final_script, reference).summary())
    print("GPT-4   script analysis:", compare_scripts(gpt4_script, reference).summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
