#!/usr/bin/env python
"""Drive the pipeline engine programmatically — no ``paraview.simple`` syntax.

The engine's filter registry backs two front doors: the ParaView-compatible
proxy layer that ChatVis scripts use, and the fluent API shown here.  Both
share the same specs and the same content-addressed result cache, so a
pipeline built either way de-duplicates work with every other session in the
process.

Run it with::

    PYTHONPATH=src python examples/engine_pipeline.py
"""

from repro.data import generate_disk_flow
from repro.engine import Engine, Pipeline, ResultCache


def main() -> int:
    engine = Engine(cache=ResultCache())

    # 1. an analytic volume → isosurface, entirely through registered specs
    pipeline = Pipeline(engine)
    surface = (
        pipeline.source("Wavelet", WholeExtent=[-8, 8, -8, 8, -8, 8])
        .then("Contour", ContourBy=["POINTS", "RTData"], Isosurfaces=[130.0])
    )
    iso = surface.evaluate()
    print(f"isosurface: {iso.summary()}")
    print(f"  first run:  {engine.last_report!r}")

    # 2. demand-driven re-execution: change one property, only the Contour
    #    node re-runs — the Wavelet source comes from the result cache
    surface.set(Isosurfaces=[120.0, 140.0])
    surface.evaluate()
    print(f"  after edit: executed={engine.last_report.executed} "
          f"cached={engine.last_report.cached}")

    # 3. an in-memory dataset → streamlines → tubes (source → filter → filter)
    flow = Pipeline(engine)
    tubes = (
        flow.dataset(generate_disk_flow(6, 16, 6), name="disk-flow")
        .then("StreamTracer", Vectors=["POINTS", "V"])
        .then("Tube", Radius=0.05, NumberofSides=6)
    )
    wrapped = tubes.evaluate()
    print(f"stream tubes: {wrapped.summary()}")

    # 4. the cache counters tell the whole story
    print(f"cache: {engine.cache.stats!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
