#!/usr/bin/env python
"""Regenerate the paper's Table II: which models can script which pipeline.

Runs every simulated model (and ChatVis) over the five canonical tasks and
prints the Error / Screenshot matrix plus the per-method success counts.

Run with::

    python examples/llm_comparison.py [output_directory] [--full]

``--full`` uses the paper's 1920x1080 resolution (slower).
"""

import sys
from pathlib import Path

from repro.eval import run_table_two
from repro.eval.harness import PAPER_MODELS


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    full = "--full" in sys.argv
    workdir = Path(args[0]) if args else Path("table2_output")
    resolution = (1920, 1080) if full else (480, 270)

    print(f"Running Table II at {resolution[0]}x{resolution[1]} "
          f"with models: ChatVis + {', '.join(PAPER_MODELS)}")
    result = run_table_two(workdir, models=PAPER_MODELS, resolution=resolution, small_data=not full)

    print()
    print(result.format_table())
    print()
    print("screenshots produced per method:", result.success_counts())
    print("error-free runs per method:     ", result.error_free_counts())

    chatvis_iterations = {
        cell.task: cell.iterations for cell in result.cells if cell.method == "ChatVis"
    }
    print("ChatVis correction-loop iterations per task:", chatvis_iterations)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
